//! Asynchronous message-passing simulator with crash faults (§2 item 3's
//! "system N").
//!
//! Channels are reliable and FIFO per (sender, receiver) pair; delivery
//! order *across* channels is chosen by an adversarial scheduler, which may
//! also crash processes (a crashed process handles no further events;
//! messages it sent before crashing remain deliverable — the usual
//! reliable-link reading of crash faults).
//!
//! Processes are event handlers ([`AsyncProcess`]): they send an initial
//! batch of messages, then react to one delivered message at a time. The
//! round-based overlay of §2 item 3 (buffer early messages, discard late
//! ones, advance on `n − f`) is built on top in [`crate::async_rounds`].

use rrfd_core::{Control, IdSet, ProcessId, SystemSize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Staging area for outgoing messages during an event handler.
///
/// Payloads are reference-counted internally: a broadcast allocates the
/// message once and enqueues `n` pointers, so fan-out costs no deep copies
/// regardless of payload size.
#[derive(Debug)]
pub struct Outbox<M> {
    n: SystemSize,
    sends: Vec<(ProcessId, Arc<M>)>,
}

impl<M: Clone> Outbox<M> {
    /// An empty outbox for a system of `n` processes. Public so custom
    /// network loops (e.g. the clone-plane reference runner in the
    /// message-plane equivalence suite) can drive [`AsyncProcess`]
    /// handlers outside [`AsyncNetSim`].
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        Outbox {
            n,
            sends: Vec::new(),
        }
    }

    /// Drains the staged `(recipient, payload)` pairs in send order.
    /// Targeted sends hold the only reference; broadcast entries share
    /// one payload.
    #[must_use]
    pub fn into_sends(self) -> Vec<(ProcessId, Arc<M>)> {
        self.sends
    }

    /// Sends `msg` to `to` (self-sends are allowed and delivered like any
    /// other message).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, Arc::new(msg)));
    }

    /// Sends `msg` to every process, self included. The payload is
    /// allocated once and shared across all `n` channel entries.
    pub fn broadcast(&mut self, msg: M) {
        let shared = Arc::new(msg);
        for p in self.n.processes() {
            self.sends.push((p, Arc::clone(&shared)));
        }
    }
}

/// An event-driven asynchronous process.
pub trait AsyncProcess {
    /// Message type.
    type Msg: Clone;
    /// Decision type.
    type Output: Clone;

    /// Called once before any delivery; queue initial sends here.
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Handles one delivered message. A `Decide` is recorded once; the
    /// process keeps receiving afterwards (decided processes still help
    /// others finish, as in the paper's forever-loop).
    ///
    /// `now` is the global delivery sequence number of this event — a
    /// real-time stamp protocols may record (e.g. for the linearizability
    /// checking of the ABD register emulation). It carries no information
    /// a real process could not obtain from a local receive counter plus
    /// the checker's omniscience, and must not influence protocol logic.
    fn on_message(
        &mut self,
        now: u64,
        from: ProcessId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    ) -> Control<Self::Output>;
}

/// Scheduler events for the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// Deliver the head-of-line message on channel `(from, to)`.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Crash a process.
    Crash(ProcessId),
}

/// Chooses delivery order and crashes.
pub trait NetScheduler {
    /// Picks the next event. `busy[from][to]` (flattened) is exposed via
    /// the `channels` list of non-empty channels with a live receiver.
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], deliveries: u64) -> NetEvent;
}

/// Errors from [`AsyncNetSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetSimError {
    /// No messages in flight, yet some correct process has not decided.
    Quiescent {
        /// The undecided correct processes.
        undecided: IdSet,
    },
    /// Delivery budget exhausted.
    DeliveryLimitExceeded {
        /// The configured limit.
        max_deliveries: u64,
    },
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
}

impl fmt::Display for NetSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetSimError::Quiescent { undecided } => {
                write!(f, "network quiescent with undecided processes {undecided}")
            }
            NetSimError::DeliveryLimitExceeded { max_deliveries } => {
                write!(f, "no full decision after {max_deliveries} deliveries")
            }
            NetSimError::WrongProcessCount { supplied, expected } => {
                write!(
                    f,
                    "{supplied} processes supplied for a system of {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NetSimError {}

/// Outcome of an asynchronous run. The final process states are returned
/// alongside so callers can extract protocol-internal logs (e.g. the
/// recorded `D(i,r)` sets of the round overlay).
#[derive(Debug, Clone)]
pub struct NetRunReport<P: AsyncProcess> {
    /// `outputs[i]` is `Some` once `p_i` decided.
    pub outputs: Vec<Option<P::Output>>,
    /// Processes crashed by the scheduler.
    pub crashed: IdSet,
    /// Messages delivered in total.
    pub deliveries: u64,
    /// Final process states.
    pub processes: Vec<P>,
}

impl<P: AsyncProcess> NetRunReport<P> {
    /// `true` when every non-crashed process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.outputs
            .iter()
            .enumerate()
            .all(|(i, o)| o.is_some() || self.crashed.contains(ProcessId::new(i)))
    }
}

/// The asynchronous network simulator.
///
/// # Examples
///
/// A one-message echo: every process broadcasts its id and decides on the
/// first id it hears.
///
/// ```
/// use rrfd_core::{Control, ProcessId, SystemSize};
/// use rrfd_sims::async_net::{AsyncNetSim, AsyncProcess, Outbox, RandomNetScheduler};
///
/// struct Echo(ProcessId);
/// impl AsyncProcess for Echo {
///     type Msg = u64;
///     type Output = u64;
///     fn on_start(&mut self, out: &mut Outbox<u64>) {
///         out.broadcast(self.0.index() as u64);
///     }
///     fn on_message(&mut self, _now: u64, _from: ProcessId, msg: u64, _out: &mut Outbox<u64>) -> Control<u64> {
///         Control::Decide(msg)
///     }
/// }
///
/// let n = SystemSize::new(3).unwrap();
/// let procs: Vec<_> = n.processes().map(Echo).collect();
/// let report = AsyncNetSim::new(n)
///     .run(procs, &mut RandomNetScheduler::new(7, 0))
///     .unwrap();
/// assert!(report.all_correct_decided());
/// ```
#[derive(Debug, Clone)]
pub struct AsyncNetSim {
    n: SystemSize,
    max_deliveries: u64,
}

/// Default delivery budget.
pub const DEFAULT_MAX_DELIVERIES: u64 = 10_000_000;

impl AsyncNetSim {
    /// Creates a simulator for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        AsyncNetSim {
            n,
            max_deliveries: DEFAULT_MAX_DELIVERIES,
        }
    }

    /// Overrides the delivery budget.
    #[must_use]
    pub fn max_deliveries(mut self, max_deliveries: u64) -> Self {
        self.max_deliveries = max_deliveries;
        self
    }

    /// The system size.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Runs until every correct process decided, the network is quiescent,
    /// or the delivery budget runs out.
    ///
    /// # Errors
    ///
    /// See [`NetSimError`].
    pub fn run<P, S>(
        &self,
        mut processes: Vec<P>,
        scheduler: &mut S,
    ) -> Result<NetRunReport<P>, NetSimError>
    where
        P: AsyncProcess,
        S: NetScheduler + ?Sized,
    {
        let n = self.n.get();
        if processes.len() != n {
            return Err(NetSimError::WrongProcessCount {
                supplied: processes.len(),
                expected: n,
            });
        }

        // channels[from][to]: FIFO queue of shared payloads.
        let mut channels: Vec<Vec<VecDeque<Arc<P::Msg>>>> = (0..n)
            .map(|_| (0..n).map(|_| VecDeque::new()).collect())
            .collect();
        let mut outputs: Vec<Option<P::Output>> = vec![None; n];
        let mut crashed = IdSet::empty();
        let mut deliveries = 0u64;
        let mut events = 0u64;
        let event_limit = self.max_deliveries.saturating_mul(4).saturating_add(1024);

        let flush = |out: Outbox<P::Msg>,
                     from: ProcessId,
                     channels: &mut Vec<Vec<VecDeque<Arc<P::Msg>>>>| {
            for (to, msg) in out.sends {
                channels[from.index()][to.index()].push_back(msg);
            }
        };

        for (i, proc_) in processes.iter_mut().enumerate() {
            let mut out = Outbox::new(self.n);
            proc_.on_start(&mut out);
            flush(out, ProcessId::new(i), &mut channels);
        }

        loop {
            let all_done =
                (0..n).all(|i| outputs[i].is_some() || crashed.contains(ProcessId::new(i)));
            if all_done {
                return Ok(NetRunReport {
                    outputs,
                    crashed,
                    deliveries,
                    processes,
                });
            }

            // Non-empty channels whose receiver is still alive.
            let busy: Vec<(ProcessId, ProcessId)> = (0..n)
                .flat_map(|from| (0..n).map(move |to| (from, to)))
                .filter(|&(from, to)| {
                    !channels[from][to].is_empty() && !crashed.contains(ProcessId::new(to))
                })
                .map(|(from, to)| (ProcessId::new(from), ProcessId::new(to)))
                .collect();

            if busy.is_empty() {
                let undecided = (0..n)
                    .map(ProcessId::new)
                    .filter(|&p| outputs[p.index()].is_none() && !crashed.contains(p))
                    .collect();
                return Err(NetSimError::Quiescent { undecided });
            }
            if deliveries >= self.max_deliveries || events >= event_limit {
                return Err(NetSimError::DeliveryLimitExceeded {
                    max_deliveries: self.max_deliveries,
                });
            }
            events += 1;

            match scheduler.next_event(&busy, deliveries) {
                NetEvent::Crash(p) => {
                    crashed.insert(p);
                }
                NetEvent::Deliver { from, to } => {
                    if crashed.contains(to) {
                        continue;
                    }
                    let Some(entry) = channels[from.index()][to.index()].pop_front() else {
                        continue;
                    };
                    deliveries += 1;
                    // The handler takes ownership; a broadcast payload is
                    // deep-copied only here, at most once per recipient,
                    // and the last recipient reclaims the allocation.
                    let msg = Arc::try_unwrap(entry).unwrap_or_else(|shared| (*shared).clone());
                    let mut out = Outbox::new(self.n);
                    let verdict = processes[to.index()].on_message(deliveries, from, msg, &mut out);
                    flush(out, to, &mut channels);
                    if let Control::Decide(v) = verdict {
                        outputs[to.index()].get_or_insert(v);
                    }
                }
            }
        }
    }
}

/// Seeded random scheduler: delivers a uniformly random pending message,
/// and crashes random processes while its budget lasts.
#[derive(Debug, Clone)]
pub struct RandomNetScheduler {
    rng: rand::rngs::StdRng,
    crash_budget: usize,
    crash_prob: f64,
}

impl RandomNetScheduler {
    /// Creates a scheduler with up to `max_crashes` crashes, deterministic
    /// in `seed`.
    #[must_use]
    pub fn new(seed: u64, max_crashes: usize) -> Self {
        use rand::SeedableRng;
        RandomNetScheduler {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            crash_budget: max_crashes,
            crash_prob: 0.002,
        }
    }

    /// Overrides the per-event crash probability (default 0.2%).
    #[must_use]
    pub fn crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl NetScheduler for RandomNetScheduler {
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], _d: u64) -> NetEvent {
        use rand::seq::SliceRandom;
        use rand::Rng;
        let &(from, to) = channels
            .choose(&mut self.rng)
            .expect("simulator guarantees non-empty channel list");
        if self.crash_budget > 0 && self.rng.gen_bool(self.crash_prob) {
            self.crash_budget -= 1;
            // Crash a random endpoint for variety.
            let victim = if self.rng.gen_bool(0.5) { from } else { to };
            NetEvent::Crash(victim)
        } else {
            NetEvent::Deliver { from, to }
        }
    }
}

/// FIFO-fair scheduler: delivers the oldest pending channel in round-robin
/// order, never crashes. The "nice" baseline.
#[derive(Debug, Clone, Default)]
pub struct FifoNetScheduler {
    cursor: usize,
}

impl FifoNetScheduler {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FifoNetScheduler { cursor: 0 }
    }
}

impl NetScheduler for FifoNetScheduler {
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], _d: u64) -> NetEvent {
        let pick = channels[self.cursor % channels.len()];
        self.cursor = self.cursor.wrapping_add(1);
        NetEvent::Deliver {
            from: pick.0,
            to: pick.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Broadcasts its input; decides once it has heard `quorum` distinct
    /// senders (self included).
    #[derive(Debug)]
    struct Gather {
        me: ProcessId,
        quorum: usize,
        heard: IdSet,
        sum: u64,
    }

    impl Gather {
        fn new(me: ProcessId, quorum: usize) -> Self {
            Gather {
                me,
                quorum,
                heard: IdSet::empty(),
                sum: 0,
            }
        }
    }

    impl AsyncProcess for Gather {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, out: &mut Outbox<u64>) {
            out.broadcast(self.me.index() as u64 + 1);
        }

        fn on_message(
            &mut self,
            _now: u64,
            from: ProcessId,
            msg: u64,
            _out: &mut Outbox<u64>,
        ) -> Control<u64> {
            if self.heard.insert(from) {
                self.sum += msg;
            }
            if self.heard.len() >= self.quorum {
                Control::Decide(self.sum)
            } else {
                Control::Continue
            }
        }
    }

    #[test]
    fn fifo_run_gathers_everything() {
        let size = n(4);
        let procs: Vec<_> = size.processes().map(|p| Gather::new(p, 4)).collect();
        let report = AsyncNetSim::new(size)
            .run(procs, &mut FifoNetScheduler::new())
            .unwrap();
        assert!(report.all_correct_decided());
        for out in &report.outputs {
            assert_eq!(*out, Some(1 + 2 + 3 + 4));
        }
    }

    #[test]
    fn random_runs_decide_for_many_seeds() {
        let size = n(5);
        for seed in 0..20u64 {
            // Quorum n − 1 tolerates the single allowed crash.
            let procs: Vec<_> = size.processes().map(|p| Gather::new(p, 4)).collect();
            let mut sched = RandomNetScheduler::new(seed, 1).crash_prob(0.01);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.crashed.len() <= 1);
        }
    }

    #[test]
    fn quiescence_with_undecided_is_detected() {
        let size = n(2);
        // Quorum 3 > n: never decides; network drains.
        let procs: Vec<_> = size.processes().map(|p| Gather::new(p, 3)).collect();
        let err = AsyncNetSim::new(size)
            .run(procs, &mut FifoNetScheduler::new())
            .unwrap_err();
        match err {
            NetSimError::Quiescent { undecided } => {
                assert_eq!(undecided.len(), 2);
            }
            other => panic!("expected quiescence, got {other:?}"),
        }
    }

    #[test]
    fn crashed_receiver_discards_messages() {
        let size = n(3);

        struct CrashP2Then {
            inner: FifoNetScheduler,
            crashed: bool,
        }
        impl NetScheduler for CrashP2Then {
            fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], d: u64) -> NetEvent {
                if !self.crashed {
                    self.crashed = true;
                    return NetEvent::Crash(ProcessId::new(2));
                }
                self.inner.next_event(channels, d)
            }
        }

        let procs: Vec<_> = size.processes().map(|p| Gather::new(p, 2)).collect();
        let mut sched = CrashP2Then {
            inner: FifoNetScheduler::new(),
            crashed: false,
        };
        let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
        assert!(report.crashed.contains(ProcessId::new(2)));
        assert!(report.outputs[2].is_none());
        assert!(report.all_correct_decided());
    }

    #[test]
    fn per_channel_fifo_order_is_preserved() {
        let size = n(2);

        /// p0 sends 1, 2, 3 to p1; p1 decides on the sequence.
        struct Sender;
        struct Receiver {
            got: Vec<u64>,
        }
        enum P {
            S(Sender),
            R(Receiver),
        }
        impl AsyncProcess for P {
            type Msg = u64;
            type Output = Vec<u64>;
            fn on_start(&mut self, out: &mut Outbox<u64>) {
                if let P::S(_) = self {
                    out.send(ProcessId::new(1), 1);
                    out.send(ProcessId::new(1), 2);
                    out.send(ProcessId::new(1), 3);
                    // Also let p0 decide trivially via a self-send.
                    out.send(ProcessId::new(0), 0);
                }
            }
            fn on_message(
                &mut self,
                _now: u64,
                _from: ProcessId,
                msg: u64,
                _out: &mut Outbox<u64>,
            ) -> Control<Vec<u64>> {
                match self {
                    P::S(_) => Control::Decide(vec![]),
                    P::R(r) => {
                        r.got.push(msg);
                        if r.got.len() == 3 {
                            Control::Decide(r.got.clone())
                        } else {
                            Control::Continue
                        }
                    }
                }
            }
        }

        for seed in 0..10u64 {
            let procs = vec![P::S(Sender), P::R(Receiver { got: vec![] })];
            let mut sched = RandomNetScheduler::new(seed, 0);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
            assert_eq!(report.outputs[1], Some(vec![1, 2, 3]), "seed {seed}");
        }
    }
}
