//! Metric-recording wrappers for the simulator schedulers.
//!
//! [`Instrumented`] wraps any scheduler — shared-memory, semi-synchronous,
//! or asynchronous-network — and records every decision it makes into an
//! [`Obs`] handle under the `rrfd_sim_*` names: one `rrfd_sim_sched_events`
//! counter per decision (split into steps, crashes, and deliveries by
//! event kind), a branching-factor histogram over the option set offered
//! at each decision point, and a running schedule-depth gauge. The wrapper
//! is transparent: it forwards the inner scheduler's choice unchanged, so
//! instrumenting a run cannot alter it.

use crate::async_net::{NetEvent, NetScheduler};
use crate::semi_sync::{SemiSyncEvent, SemiSyncScheduler};
use crate::shared_mem::{MemEvent, MemScheduler};
use rrfd_core::{IdSet, ProcessId};
use rrfd_obs::{names, Labels, Obs};

/// A scheduler wrapper that records each decision as `rrfd_sim_*` metrics
/// before forwarding it unchanged.
#[derive(Debug)]
pub struct Instrumented<S> {
    inner: S,
    obs: Obs,
    depth: u64,
}

impl<S> Instrumented<S> {
    /// Wraps `inner`, recording its decisions into `obs`.
    #[must_use]
    pub fn new(inner: S, obs: Obs) -> Self {
        Instrumented {
            inner,
            obs,
            depth: 0,
        }
    }

    /// The wrapped scheduler.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Decisions recorded so far (the schedule depth).
    #[must_use]
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Common bookkeeping at each decision point: the branching factor
    /// offered, then the advancing depth gauge.
    fn decision(&mut self, branching: usize) {
        self.depth += 1;
        self.obs
            .observe(names::SIM_BRANCHING, Labels::GLOBAL, branching as u64);
        self.obs.gauge(
            names::SIM_SCHED_DEPTH,
            Labels::GLOBAL,
            i64::try_from(self.depth).unwrap_or(i64::MAX),
        );
    }

    fn step(&self, p: ProcessId) {
        self.obs
            .add(names::SIM_SCHED_EVENTS, Labels::process(p.index()), 1);
        self.obs
            .add(names::SIM_STEPS, Labels::process(p.index()), 1);
    }

    fn crash(&self, p: ProcessId) {
        self.obs
            .add(names::SIM_SCHED_EVENTS, Labels::process(p.index()), 1);
        self.obs
            .add(names::SIM_CRASHES, Labels::process(p.index()), 1);
    }
}

impl<S: MemScheduler> MemScheduler for Instrumented<S> {
    fn next_event(&mut self, runnable: IdSet, step: u64) -> MemEvent {
        self.decision(runnable.len());
        let event = self.inner.next_event(runnable, step);
        match event {
            MemEvent::Step(p) => self.step(p),
            MemEvent::Crash(p) => self.crash(p),
        }
        event
    }
}

impl<S: SemiSyncScheduler> SemiSyncScheduler for Instrumented<S> {
    fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent {
        self.decision(live.len());
        let event = self.inner.next_event(live, step);
        match event {
            SemiSyncEvent::Step(p) => self.step(p),
            SemiSyncEvent::Crash(p) => self.crash(p),
        }
        event
    }
}

impl<S: NetScheduler> NetScheduler for Instrumented<S> {
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], deliveries: u64) -> NetEvent {
        self.decision(channels.len());
        let event = self.inner.next_event(channels, deliveries);
        match event {
            NetEvent::Deliver { to, .. } => {
                self.obs
                    .add(names::SIM_SCHED_EVENTS, Labels::process(to.index()), 1);
                self.obs
                    .add(names::SIM_DELIVERIES, Labels::process(to.index()), 1);
            }
            NetEvent::Crash(p) => self.crash(p),
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_mem::{Action, MemProcess, Observation, SharedMemSim};
    use rrfd_core::SystemSize;

    /// Steps round-robin through the runnable set.
    struct RoundRobin {
        turn: usize,
    }
    impl MemScheduler for RoundRobin {
        fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
            let ids: Vec<_> = runnable.iter().collect();
            let pick = ids[self.turn % ids.len()];
            self.turn += 1;
            MemEvent::Step(pick)
        }
    }

    #[derive(Debug)]
    struct WriteThenDecide {
        me: ProcessId,
    }
    impl MemProcess<u64> for WriteThenDecide {
        type Output = ();
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, ()> {
            match obs {
                Observation::Start => Action::Write {
                    bank: 0,
                    value: self.me.index() as u64,
                },
                _ => Action::Decide(()),
            }
        }
    }

    #[test]
    fn wrapped_scheduler_is_transparent_and_counted() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let make = || {
            vec![
                WriteThenDecide {
                    me: ProcessId::new(0),
                },
                WriteThenDecide {
                    me: ProcessId::new(1),
                },
            ]
        };

        // Baseline run with the bare scheduler.
        let bare = sim.run(make(), &mut RoundRobin { turn: 0 }).unwrap();

        // Instrumented run makes identical choices.
        let obs = Obs::logical();
        let mut wrapped = Instrumented::new(RoundRobin { turn: 0 }, obs.clone());
        let instrumented = sim.run(make(), &mut wrapped).unwrap();
        assert_eq!(bare.outputs, instrumented.outputs);

        let snap = obs.snapshot();
        let events = snap.counter_total(names::SIM_SCHED_EVENTS);
        assert_eq!(events, wrapped.depth());
        assert_eq!(snap.counter_total(names::SIM_STEPS), events);
        assert_eq!(snap.counter_total(names::SIM_CRASHES), 0);
        // Branching was observed once per decision.
        let branching = snap
            .get(names::SIM_BRANCHING, Labels::GLOBAL)
            .expect("branching histogram recorded");
        match branching {
            rrfd_obs::MetricValue::Histogram(h) => assert_eq!(h.count, events),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
