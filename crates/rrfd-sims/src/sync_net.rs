//! Synchronous message-passing simulator with send-omission and crash
//! faults (§2 items 1 and 2's "system N").
//!
//! Time advances in lock-step rounds: every live process sends to everyone,
//! the fault injector drops some messages (according to its ground-truth
//! fault assignment), and every live process receives the surviving
//! messages before the round ends. The set of senders a process did *not*
//! hear is exactly the `D(i,r)` the paper uses to map system N onto its
//! RRFD counterpart; the simulator records it per round so experiment E1
//! can machine-check eq. 1 / eq. 2 against real message-level executions.

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::{Rng, SeedableRng};
use rrfd_core::{
    Control, Delivery, FaultPattern, IdSet, ProcessId, Round, RoundFaults, RoundProtocol,
    SystemSize,
};
use std::fmt;

/// Ground-truth fault behaviour: which messages are lost each round.
pub trait SyncFaults {
    /// The system size.
    fn system_size(&self) -> SystemSize;

    /// `drops[s]` is the set of receivers that do **not** get `p_s`'s
    /// round-`round` message. Called once per round, in order.
    fn drops(&mut self, round: Round) -> Vec<IdSet>;

    /// Processes that have crashed *before or during* `round` and take no
    /// further part (empty for pure omission faults).
    fn crashed_by(&self, round: Round) -> IdSet;
}

/// Send-omission faults: a fixed faulty set; each round every message from
/// a faulty sender is independently dropped with probability `drop_prob`.
#[derive(Debug, Clone)]
pub struct RandomOmission {
    n: SystemSize,
    faulty: IdSet,
    drop_prob: f64,
    rng: StdRng,
}

impl RandomOmission {
    /// Creates the injector with `faulty` send-omission-faulty processes.
    ///
    /// # Panics
    ///
    /// Panics if `faulty` covers the whole universe.
    #[must_use]
    pub fn new(n: SystemSize, faulty: IdSet, drop_prob: f64, seed: u64) -> Self {
        assert!(
            faulty.len() < n.get(),
            "at least one process must be correct"
        );
        RandomOmission {
            n,
            faulty,
            drop_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The faulty set.
    #[must_use]
    pub fn faulty(&self) -> IdSet {
        self.faulty
    }
}

impl SyncFaults for RandomOmission {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn drops(&mut self, _round: Round) -> Vec<IdSet> {
        self.n
            .processes()
            .map(|s| {
                if !self.faulty.contains(s) {
                    return IdSet::empty();
                }
                self.n
                    .processes()
                    // A sender always "has" its own message locally.
                    .filter(|&r| r != s && self.rng.gen_bool(self.drop_prob))
                    .collect()
            })
            .collect()
    }

    fn crashed_by(&self, _round: Round) -> IdSet {
        IdSet::empty()
    }
}

/// Crash faults: each faulty process has a crash round; in its crash round
/// it delivers to a random subset of receivers, afterwards to nobody.
#[derive(Debug, Clone)]
pub struct RandomCrash {
    n: SystemSize,
    /// `schedule[i] = Some(r)`: `p_i` crashes in round `r`.
    schedule: Vec<Option<Round>>,
    rng: StdRng,
}

impl RandomCrash {
    /// Creates the injector: each process in `faulty` crashes at a uniform
    /// round in `1..=horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `faulty` covers the whole universe or `horizon == 0`.
    #[must_use]
    pub fn new(n: SystemSize, faulty: IdSet, horizon: u32, seed: u64) -> Self {
        assert!(
            faulty.len() < n.get(),
            "at least one process must be correct"
        );
        assert!(horizon >= 1, "horizon must cover at least one round");
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = n
            .processes()
            .map(|p| {
                faulty
                    .contains(p)
                    .then(|| Round::new(rng.gen_range(1..=horizon)))
            })
            .collect();
        RandomCrash { n, schedule, rng }
    }

    /// Creates the injector from an explicit crash schedule.
    #[must_use]
    pub fn from_schedule(n: SystemSize, schedule: Vec<Option<Round>>, seed: u64) -> Self {
        assert_eq!(schedule.len(), n.get());
        RandomCrash {
            n,
            schedule,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SyncFaults for RandomCrash {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn drops(&mut self, round: Round) -> Vec<IdSet> {
        let n = self.n;
        let universe = IdSet::universe(n);
        self.n
            .processes()
            .map(|s| match self.schedule[s.index()] {
                Some(c) if round > c => universe - IdSet::singleton(s),
                Some(c) if round == c => {
                    // Mid-round crash: an arbitrary subset of receivers is
                    // reached; the rest (never itself) miss out.
                    let others = universe - IdSet::singleton(s);
                    let miss_count = self.rng.gen_range(0..=others.len());
                    others
                        .iter()
                        .choose_multiple(&mut self.rng, miss_count)
                        .into_iter()
                        .collect()
                }
                _ => IdSet::empty(),
            })
            .collect()
    }

    fn crashed_by(&self, round: Round) -> IdSet {
        self.n
            .processes()
            .filter(|&p| matches!(self.schedule[p.index()], Some(c) if c <= round))
            .collect()
    }
}

/// Errors from [`SyncNetSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncSimError {
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
    /// `max_rounds` elapsed before every live process decided.
    RoundLimitExceeded {
        /// The configured limit.
        max_rounds: u32,
    },
}

impl fmt::Display for SyncSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncSimError::WrongProcessCount { supplied, expected } => {
                write!(
                    f,
                    "{supplied} processes supplied for a system of {expected}"
                )
            }
            SyncSimError::RoundLimitExceeded { max_rounds } => {
                write!(f, "no full decision after {max_rounds} synchronous rounds")
            }
        }
    }
}

impl std::error::Error for SyncSimError {}

/// Outcome of a synchronous run.
#[derive(Debug, Clone)]
pub struct SyncRunReport<O> {
    /// `outputs[i]` is `Some` once `p_i` decided (crashed processes that
    /// decided before crashing keep their decision).
    pub outputs: Vec<Option<O>>,
    /// The extracted RRFD view: `D(i,r)` = senders `p_i` missed in round `r`.
    pub pattern: FaultPattern,
    /// Processes crashed during the run.
    pub crashed: IdSet,
    /// Rounds executed.
    pub rounds: u32,
}

/// The synchronous simulator.
///
/// # Examples
///
/// Fault-free flood for two rounds:
///
/// ```
/// use rrfd_core::{Control, Delivery, IdSet, Round, RoundProtocol, SystemSize};
/// use rrfd_sims::sync_net::{RandomOmission, SyncNetSim};
///
/// struct TwoRounds;
/// impl RoundProtocol for TwoRounds {
///     type Msg = ();
///     type Output = u32;
///     fn emit(&mut self, _r: Round) {}
///     fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<u32> {
///         if d.round.get() >= 2 { Control::Decide(d.round.get()) } else { Control::Continue }
///     }
/// }
///
/// let n = SystemSize::new(3).unwrap();
/// let faults = RandomOmission::new(n, IdSet::empty(), 0.0, 0);
/// let report = SyncNetSim::new(n)
///     .run((0..3).map(|_| TwoRounds).collect(), faults)
///     .unwrap();
/// assert_eq!(report.rounds, 2);
/// assert!(report.pattern.cumulative_union().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SyncNetSim {
    n: SystemSize,
    max_rounds: u32,
}

impl SyncNetSim {
    /// Creates a simulator for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        SyncNetSim {
            n,
            max_rounds: 10_000,
        }
    }

    /// Overrides the round budget.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs until every live process decided.
    ///
    /// # Errors
    ///
    /// See [`SyncSimError`].
    pub fn run<P, F>(
        &self,
        mut protocols: Vec<P>,
        mut faults: F,
    ) -> Result<SyncRunReport<P::Output>, SyncSimError>
    where
        P: RoundProtocol,
        F: SyncFaults,
    {
        let n = self.n.get();
        if protocols.len() != n {
            return Err(SyncSimError::WrongProcessCount {
                supplied: protocols.len(),
                expected: n,
            });
        }

        let mut outputs: Vec<Option<P::Output>> = vec![None; n];
        let mut pattern = FaultPattern::new(self.n);
        // Round-scratch emission table, reused so steady-state rounds do
        // not allocate; every live recipient borrows it through a masked
        // `Delivery` view instead of receiving per-recipient clones.
        let mut messages: Vec<Option<P::Msg>> = Vec::with_capacity(n);

        for round_no in 1..=self.max_rounds {
            let round = Round::new(round_no);
            let crashed = faults.crashed_by(round);
            // Crashing *this* round still emits (partial sends handled by
            // the injector's drops); crashed in earlier rounds do not.
            let silent = faults.crashed_by(Round::new(round_no.saturating_sub(1).max(1)));
            let silent = if round_no == 1 {
                IdSet::empty()
            } else {
                silent
            };

            messages.clear();
            messages.extend(protocols.iter_mut().enumerate().map(|(i, p)| {
                let id = ProcessId::new(i);
                (!silent.contains(id)).then(|| p.emit(round))
            }));

            let drops = faults.drops(round);
            debug_assert_eq!(drops.len(), n);

            let mut round_faults = RoundFaults::none(self.n);
            for i in 0..n {
                let me = ProcessId::new(i);
                if crashed.contains(me) && silent.contains(me) {
                    // Long-crashed processes neither receive nor record; by
                    // convention their D(i,r) is the silent set minus
                    // themselves, matching the crash predicate's
                    // self-exemption in eq. 2 and its self-trust clause.
                    round_faults.set(me, silent - IdSet::singleton(me));
                    continue;
                }
                // A message is missed iff its sender was silent (so never
                // emitted into the shared table) or the injector dropped
                // the send to `me` — the same set the per-recipient clone
                // plane produced, computed without materialising it.
                let suspected: IdSet = (0..n)
                    .filter(|&s| {
                        let sender = ProcessId::new(s);
                        silent.contains(sender) || drops[s].contains(me)
                    })
                    .map(ProcessId::new)
                    .collect();
                round_faults.set(me, suspected);
                let verdict = protocols[i].deliver(Delivery::new(round, me, &messages, suspected));
                if let Control::Decide(v) = verdict {
                    outputs[i].get_or_insert(v);
                }
            }

            pattern.push(round_faults);

            let all_live_decided =
                (0..n).all(|i| outputs[i].is_some() || crashed.contains(ProcessId::new(i)));
            if all_live_decided {
                return Ok(SyncRunReport {
                    outputs,
                    pattern,
                    crashed,
                    rounds: round_no,
                });
            }
        }

        Err(SyncSimError::RoundLimitExceeded {
            max_rounds: self.max_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    /// Decides after `rounds` rounds with the set of processes heard in the
    /// final round.
    struct HeardAt {
        rounds: u32,
    }

    impl RoundProtocol for HeardAt {
        type Msg = ();
        type Output = IdSet;
        fn emit(&mut self, _r: Round) {}
        fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<IdSet> {
            if d.round.get() >= self.rounds {
                Control::Decide(d.heard_from())
            } else {
                Control::Continue
            }
        }
    }

    #[test]
    fn omission_runs_satisfy_eq1() {
        use rrfd_core::RrfdPredicate;
        use rrfd_models::predicates::SendOmission;
        let size = n(6);
        for seed in 0..10u64 {
            let faulty = ids(&[1, 4]);
            let faults = RandomOmission::new(size, faulty, 0.4, seed);
            let protos: Vec<_> = (0..6).map(|_| HeardAt { rounds: 5 }).collect();
            let report = SyncNetSim::new(size).run(protos, faults).unwrap();
            let p1 = SendOmission::new(size, 2);
            assert!(
                p1.admits_pattern(&report.pattern),
                "seed {seed}: extracted pattern broke eq. 1"
            );
            assert!(report.pattern.cumulative_union().is_subset(faulty));
        }
    }

    #[test]
    fn crash_runs_crash_permanently() {
        let size = n(5);
        let schedule = vec![None, Some(Round::new(2)), None, None, None];
        let faults = RandomCrash::from_schedule(size, schedule, 3);
        let protos: Vec<_> = (0..5).map(|_| HeardAt { rounds: 4 }).collect();
        let report = SyncNetSim::new(size).run(protos, faults).unwrap();
        assert_eq!(report.crashed, ids(&[1]));
        // From round 3 on, everyone misses p1.
        for r in 3..=4 {
            let rf = report.pattern.round(Round::new(r)).unwrap();
            for i in size.processes() {
                if i != ProcessId::new(1) {
                    assert!(rf.of(i).contains(ProcessId::new(1)));
                }
            }
        }
        // p1 decided nothing (it crashed before its decision round).
        assert!(report.outputs[1].is_none());
        assert!(report.outputs[0].is_some());
    }

    #[test]
    fn fault_free_run_has_empty_pattern() {
        let size = n(4);
        let faults = RandomOmission::new(size, IdSet::empty(), 0.9, 0);
        let protos: Vec<_> = (0..4).map(|_| HeardAt { rounds: 3 }).collect();
        let report = SyncNetSim::new(size).run(protos, faults).unwrap();
        assert!(report.pattern.cumulative_union().is_empty());
        for out in report.outputs {
            assert_eq!(out.unwrap(), IdSet::universe(size));
        }
    }

    #[test]
    fn round_limit_is_reported() {
        let size = n(2);
        let faults = RandomOmission::new(size, IdSet::empty(), 0.0, 0);
        let protos: Vec<_> = (0..2).map(|_| HeardAt { rounds: 100 }).collect();
        let err = SyncNetSim::new(size)
            .max_rounds(5)
            .run(protos, faults)
            .unwrap_err();
        assert_eq!(err, SyncSimError::RoundLimitExceeded { max_rounds: 5 });
    }

    #[test]
    fn mid_crash_round_may_deliver_partially() {
        // Over many seeds, a process crashing at round 1 sometimes reaches
        // a proper subset of receivers — the behaviour eq. 2 tolerates in
        // the crash round itself.
        let size = n(5);
        let mut saw_partial = false;
        for seed in 0..30u64 {
            let schedule = vec![Some(Round::new(1)), None, None, None, None];
            let faults = RandomCrash::from_schedule(size, schedule, seed);
            let protos: Vec<_> = (0..5).map(|_| HeardAt { rounds: 2 }).collect();
            let report = SyncNetSim::new(size).run(protos, faults).unwrap();
            let r1 = report.pattern.round(Round::new(1)).unwrap();
            let missed_by: usize = size
                .processes()
                .filter(|&i| r1.of(i).contains(ProcessId::new(0)))
                .count();
            if missed_by > 0 && missed_by < 4 {
                saw_partial = true;
            }
        }
        assert!(saw_partial, "crash rounds never delivered partially");
    }
}
