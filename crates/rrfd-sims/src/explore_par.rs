//! Work-distributing, pruned schedule exploration.
//!
//! The sequential explorers in [`crate::explore`] re-run the whole
//! simulation once per schedule, so shared prefixes are paid for over and
//! over. This module replaces that with an explicit-state depth-first
//! search over cloneable execution states ([`crate::shared_mem::MemExecution`],
//! [`crate::semi_sync::SemiSyncExecution`]): every decision point is
//! visited once, the state is cloned per branch, and three orthogonal
//! mechanisms cut the tree down and spread it out:
//!
//! 1. **Prefix splitting** — the tree is expanded to a configurable
//!    prefix depth ([`ParConfig::split_depth`]) and each frontier node
//!    becomes an independent subtree job, executed by `std::thread`
//!    workers that claim jobs from a shared queue.
//! 2. **Converged-state memoization** — each worker keeps a per-job
//!    [`DigestMemo`] of canonical state encodings (the
//!    [`StateDigest`] seam); a child state already seen is pruned. The
//!    memo confirms membership by full byte equality, so weak-hash
//!    collisions can never merge distinct states, and step counters are
//!    part of the encoding, so the state graph is acyclic and visit-time
//!    insertion is sound: every reachable distinct state is still visited
//!    at least once.
//! 3. **Symmetry reduction** (opt-in) — schedules are quotiented by
//!    process-id permutations: a branch is explored only if processes
//!    make their first appearance in increasing id order. This is sound
//!    only for id-symmetric instances, so enabling it runs a refusal
//!    probe first: a reference schedule and its adjacent-transposition
//!    images are executed and their per-process outcome fingerprints
//!    compared under the permutation; any mismatch rejects the search
//!    with [`ParExploreError::SymmetryRejected`]. The probe is a
//!    necessary-condition guard (it reliably refuses id-dependent
//!    protocols such as one writing `me + 1`); full symmetry of the
//!    protocol *and* the checked property remains the caller's assertion.
//!
//! Determinism: per-job memos, no cross-job early abort, and a fixed
//! job-order fold of [`ExploreStats`] make the returned stats and the
//! chosen counterexample byte-identical for a given configuration,
//! regardless of thread timing or worker count (only the `workers` field
//! reflects the configuration itself). Counterexamples carry the same
//! replayable [`ScheduleTrace`] certificates as the sequential walkers.

use crate::digest::{DigestMemo, DigestWriter, StateDigest, StateKey};
use crate::explore::{Counterexample, ExploreStats};
use crate::semi_sync::{
    SemiSyncEvent, SemiSyncExecution, SemiSyncProcess, SemiSyncReport, SemiSyncSim,
};
use crate::shared_mem::{MemEvent, MemExecution, MemProcess, MemRunReport, SharedMemSim};
use crate::trace::{SchedEvent, ScheduleTrace};
use rrfd_core::{IdSet, ProcessId};
use rrfd_obs::Obs;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count
/// ([`ParConfig::from_env`]).
pub const WORKERS_ENV: &str = "RRFD_EXPLORE_WORKERS";

/// Configuration of a parallel exploration.
#[derive(Debug, Clone)]
pub struct ParConfig {
    workers: usize,
    split_depth: usize,
    hash_pruning: bool,
    symmetry: bool,
    max_schedules: usize,
    memo_max_entries: usize,
    memo_max_bytes: usize,
    obs: Obs,
}

impl ParConfig {
    /// A configuration with `workers` threads (clamped to at least one),
    /// split depth 2, hash pruning on, symmetry reduction off, and a
    /// 1 000 000-schedule guard.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ParConfig {
            workers: workers.max(1),
            split_depth: 2,
            hash_pruning: true,
            symmetry: false,
            max_schedules: 1_000_000,
            memo_max_entries: usize::MAX,
            memo_max_bytes: usize::MAX,
            obs: Obs::noop(),
        }
    }

    /// Worker count from the `RRFD_EXPLORE_WORKERS` environment variable,
    /// falling back to the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        ParConfig::new(workers)
    }

    /// Overrides the prefix depth at which the schedule tree is split
    /// into jobs. `0` disables splitting (one job, still memoized).
    #[must_use]
    pub fn split_depth(mut self, depth: usize) -> Self {
        self.split_depth = depth;
        self
    }

    /// Enables or disables converged-state memoization.
    #[must_use]
    pub fn hash_pruning(mut self, on: bool) -> Self {
        self.hash_pruning = on;
        self
    }

    /// Enables or disables process-id symmetry reduction. Enabling it
    /// requires a per-process fingerprint function and subjects the
    /// instance to the refusal probe.
    #[must_use]
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Overrides the schedule-count guard (the analogue of the sequential
    /// explorers' `max_runs`).
    #[must_use]
    pub fn max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max;
        self
    }

    /// Caps each per-job [`DigestMemo`] at `entries` retained states and
    /// `bytes` of retained encodings (both default to unbounded). A full
    /// memo degrades soundly: it stops inserting, so later states are
    /// re-explored instead of pruned — fewer prunes, never a wrong prune.
    /// Saturation is reported through [`ExploreStats::memo_saturated`].
    #[must_use]
    pub fn memo_cap(mut self, entries: usize, bytes: usize) -> Self {
        self.memo_max_entries = entries;
        self.memo_max_bytes = bytes;
        self
    }

    /// Attaches an instrumentation handle. The final, folded
    /// [`ExploreStats`] of every search run with this configuration are
    /// recorded under the `rrfd_explore_*` metric names — including
    /// searches aborted by a counterexample, whose partial effort is
    /// folded into the certificate and recorded the same way. The
    /// default no-op handle records nothing.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::from_env()
    }
}

/// Why a parallel exploration did not return clean stats.
#[derive(Debug, Clone)]
pub enum ParExploreError<E> {
    /// A schedule failed the check; carries the replayable certificate
    /// and the search effort up to the abort.
    Counterexample(Box<Counterexample<E>>),
    /// Symmetry reduction was requested but the instance failed the
    /// refusal probe (or supplied no usable fingerprint).
    SymmetryRejected(String),
    /// The instance could not even be started (wrong process count).
    Misconfigured(String),
}

impl<E: SchedEvent> fmt::Display for ParExploreError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParExploreError::Counterexample(cex) => write!(f, "{cex}"),
            ParExploreError::SymmetryRejected(why) => {
                write!(f, "symmetry reduction refused: {why}")
            }
            ParExploreError::Misconfigured(why) => write!(f, "misconfigured exploration: {why}"),
        }
    }
}

impl<E: SchedEvent> std::error::Error for ParExploreError<E> {}

/// Placeholder fingerprint for searches that leave symmetry reduction
/// off. It yields no per-process parts, so accidentally enabling
/// symmetry with it is refused rather than silently unsound.
#[must_use]
pub fn no_fingerprint<R>(_report: &R) -> Vec<Vec<u8>> {
    Vec::new()
}

/// The standard symmetry fingerprint for shared-memory runs: each
/// process's output, canonically encoded.
#[must_use]
pub fn mem_output_fingerprint<P, V>(report: &MemRunReport<P, V>) -> Vec<Vec<u8>>
where
    P: MemProcess<V>,
    P::Output: StateDigest,
{
    report.outputs.iter().map(encode_part).collect()
}

/// The standard symmetry fingerprint for semi-synchronous runs: each
/// process's output (without its step count, which schedule permutations
/// legitimately change), canonically encoded.
#[must_use]
pub fn semi_output_fingerprint<P>(report: &SemiSyncReport<P>) -> Vec<Vec<u8>>
where
    P: SemiSyncProcess,
    P::Output: StateDigest,
{
    report
        .outputs
        .iter()
        .map(|o| encode_part(&o.as_ref().map(|(v, _steps)| v)))
        .collect()
}

fn encode_part<T: StateDigest>(value: &T) -> Vec<u8> {
    let mut w = DigestWriter::new();
    value.digest(&mut w);
    w.finish().bytes().to_vec()
}

/// Explores every schedule of `sim` (crash-free, mirroring
/// [`crate::explore::explore_schedules_checked`]) with the parallel,
/// pruned walker. `fingerprint` is only consulted when
/// [`ParConfig::symmetry`] is enabled; pass [`no_fingerprint`] otherwise.
///
/// # Errors
///
/// [`ParExploreError::Counterexample`] for the first failing schedule in
/// deterministic search order, [`ParExploreError::SymmetryRejected`] when
/// the symmetry probe refuses the instance, and
/// [`ParExploreError::Misconfigured`] when the protocol vector does not
/// match the system size.
///
/// # Panics
///
/// Panics past [`ParConfig::max_schedules`] complete schedules, or when a
/// protocol errors mid-run (explorations require clean, terminating,
/// crash-free protocols).
pub fn explore_shared_mem_par<V, P, G, F, FP>(
    sim: &SharedMemSim,
    make: G,
    check: F,
    fingerprint: FP,
    config: &ParConfig,
) -> Result<ExploreStats, ParExploreError<MemEvent>>
where
    V: Clone + StateDigest + Send + Sync,
    P: MemProcess<V> + Clone + StateDigest + Send + Sync,
    P::Output: Clone + StateDigest + Send + Sync,
    G: Fn() -> Vec<P>,
    F: Fn(&MemRunReport<P, V>) -> Result<(), String> + Sync,
    FP: Fn(&MemRunReport<P, V>) -> Vec<Vec<u8>>,
{
    let exec = MemExecution::start(sim, make())
        .map_err(|err| ParExploreError::Misconfigured(err.to_string()))?;
    let root = MemTarget {
        n: sim.system_size().get(),
        exec,
    };
    drive(root, &check, &fingerprint, config)
}

/// Explores every semi-synchronous schedule with up to `max_crashes`
/// adversarially timed crashes, mirroring
/// [`crate::explore::semi_sync::explore_semi_sync_checked`], with the
/// parallel, pruned walker.
///
/// # Errors
///
/// As [`explore_shared_mem_par`].
///
/// # Panics
///
/// As [`explore_shared_mem_par`].
pub fn explore_semi_sync_par<P, G, F, FP>(
    sim: &SemiSyncSim,
    max_crashes: usize,
    make: G,
    check: F,
    fingerprint: FP,
    config: &ParConfig,
) -> Result<ExploreStats, ParExploreError<SemiSyncEvent>>
where
    P: SemiSyncProcess + Clone + StateDigest + Send + Sync,
    P::Msg: StateDigest + Send + Sync,
    P::Output: StateDigest + Send + Sync,
    G: Fn() -> Vec<P>,
    F: Fn(&SemiSyncReport<P>) -> Result<(), String> + Sync,
    FP: Fn(&SemiSyncReport<P>) -> Vec<Vec<u8>>,
{
    let exec = SemiSyncExecution::start(sim, make())
        .map_err(|err| ParExploreError::Misconfigured(err.to_string()))?;
    let root = SemiTarget {
        n: exec.live().len(),
        crash_budget: max_crashes,
        exec,
    };
    drive(root, &check, &fingerprint, config)
}

/// What the generic driver needs from an execution state: its branching
/// structure, cloning, canonical digests, and event/pid bookkeeping for
/// symmetry reduction.
trait Explorable: Sized {
    type Event: SchedEvent + Send + Sync;
    type Report;

    fn n(&self) -> usize;
    /// Scheduler options at this state; empty exactly at complete runs.
    fn options(&self) -> Vec<Self::Event>;
    /// Applies an option returned by [`Explorable::options`].
    fn apply(&mut self, event: Self::Event);
    /// Packages the (final) state as a run report.
    fn report(&self) -> Self::Report;
    /// Canonical state key, or `None` when the state is not soundly
    /// digestible (opaque oracle state). `appeared` is folded in when
    /// symmetry reduction is on — the set of already-seen processes
    /// changes which branches remain canonical, so it is part of the
    /// search state.
    fn digest(&self, appeared: Option<IdSet>) -> Option<StateKey>;
    fn event_pid(event: &Self::Event) -> ProcessId;
    fn permute_event(event: &Self::Event, perm: &[usize]) -> Self::Event;
}

struct MemTarget<P: MemProcess<V>, V> {
    n: usize,
    exec: MemExecution<P, V>,
}

impl<P, V> Clone for MemTarget<P, V>
where
    P: MemProcess<V> + Clone,
    P::Output: Clone,
    V: Clone,
{
    fn clone(&self) -> Self {
        MemTarget {
            n: self.n,
            exec: self.exec.clone(),
        }
    }
}

impl<P, V> Explorable for MemTarget<P, V>
where
    P: MemProcess<V> + Clone + StateDigest,
    P::Output: Clone + StateDigest,
    V: Clone + StateDigest,
{
    type Event = MemEvent;
    type Report = MemRunReport<P, V>;

    fn n(&self) -> usize {
        self.n
    }

    fn options(&self) -> Vec<MemEvent> {
        self.exec.runnable().iter().map(MemEvent::Step).collect()
    }

    fn apply(&mut self, event: MemEvent) {
        let applied = self.exec.apply(event);
        assert!(
            applied.is_ok(),
            "exploration requires clean, terminating protocols: {applied:?}"
        );
    }

    fn report(&self) -> MemRunReport<P, V> {
        self.exec.clone().into_report()
    }

    fn digest(&self, appeared: Option<IdSet>) -> Option<StateKey> {
        if !self.exec.supports_digest() {
            return None;
        }
        let mut w = DigestWriter::new();
        self.exec.digest_into(&mut w);
        if let Some(seen) = appeared {
            seen.digest(&mut w);
        }
        Some(w.finish())
    }

    fn event_pid(event: &MemEvent) -> ProcessId {
        match *event {
            MemEvent::Step(p) | MemEvent::Crash(p) => p,
        }
    }

    fn permute_event(event: &MemEvent, perm: &[usize]) -> MemEvent {
        let map = |p: ProcessId| ProcessId::new(perm[p.index()]);
        match *event {
            MemEvent::Step(p) => MemEvent::Step(map(p)),
            MemEvent::Crash(p) => MemEvent::Crash(map(p)),
        }
    }
}

struct SemiTarget<P: SemiSyncProcess> {
    n: usize,
    crash_budget: usize,
    exec: SemiSyncExecution<P>,
}

impl<P: SemiSyncProcess + Clone> Clone for SemiTarget<P> {
    fn clone(&self) -> Self {
        SemiTarget {
            n: self.n,
            crash_budget: self.crash_budget,
            exec: self.exec.clone(),
        }
    }
}

impl<P> Explorable for SemiTarget<P>
where
    P: SemiSyncProcess + Clone + StateDigest,
    P::Msg: StateDigest,
    P::Output: StateDigest,
{
    type Event = SemiSyncEvent;
    type Report = SemiSyncReport<P>;

    fn n(&self) -> usize {
        self.n
    }

    /// Mirrors the sequential walker's option order: step each live
    /// process in id order, then (budget and liveness permitting) crash
    /// each.
    fn options(&self) -> Vec<SemiSyncEvent> {
        let live = self.exec.live();
        let mut opts: Vec<SemiSyncEvent> = live.iter().map(SemiSyncEvent::Step).collect();
        if self.crash_budget > 0 && live.len() > 1 {
            opts.extend(live.iter().map(SemiSyncEvent::Crash));
        }
        opts
    }

    fn apply(&mut self, event: SemiSyncEvent) {
        if let SemiSyncEvent::Crash(_) = event {
            self.crash_budget -= 1;
        }
        let applied = self.exec.apply(event);
        assert!(
            applied.is_ok(),
            "exploration requires clean, terminating protocols: {applied:?}"
        );
    }

    fn report(&self) -> SemiSyncReport<P> {
        self.exec.clone().into_report()
    }

    fn digest(&self, appeared: Option<IdSet>) -> Option<StateKey> {
        let mut w = DigestWriter::new();
        self.exec.digest_into(&mut w);
        // The remaining crash budget shapes the option set, so it is part
        // of the search state even though the simulator does not track it.
        w.write_u64(self.crash_budget as u64);
        if let Some(seen) = appeared {
            seen.digest(&mut w);
        }
        Some(w.finish())
    }

    fn event_pid(event: &SemiSyncEvent) -> ProcessId {
        match *event {
            SemiSyncEvent::Step(p) | SemiSyncEvent::Crash(p) => p,
        }
    }

    fn permute_event(event: &SemiSyncEvent, perm: &[usize]) -> SemiSyncEvent {
        let map = |p: ProcessId| ProcessId::new(perm[p.index()]);
        match *event {
            SemiSyncEvent::Step(p) => SemiSyncEvent::Step(map(p)),
            SemiSyncEvent::Crash(p) => SemiSyncEvent::Crash(map(p)),
        }
    }
}

/// One frontier node of the prefix expansion: an independent subtree job.
struct Job<T: Explorable> {
    state: T,
    path: Vec<T::Event>,
    choices: Vec<usize>,
    appeared: IdSet,
}

/// Per-job (or per-expansion) search result.
struct JobOutcome<E> {
    stats: ExploreStats,
    cex: Option<Counterexample<E>>,
}

impl<E> JobOutcome<E> {
    fn new() -> Self {
        JobOutcome {
            stats: ExploreStats::default(),
            cex: None,
        }
    }
}

/// The generic driver: probe (if symmetric), expand to the split depth,
/// run the subtree jobs on workers, fold in job order.
fn drive<T, F, FP>(
    root: T,
    check: &F,
    fingerprint: &FP,
    config: &ParConfig,
) -> Result<ExploreStats, ParExploreError<T::Event>>
where
    T: Explorable + Clone + Send + Sync,
    F: Fn(&T::Report) -> Result<(), String> + Sync,
    FP: Fn(&T::Report) -> Vec<Vec<u8>>,
{
    if config.symmetry {
        probe_symmetry(&root, fingerprint).map_err(ParExploreError::SymmetryRejected)?;
    }

    let schedules_seen = AtomicUsize::new(0);
    let mut expansion = JobOutcome::new();
    let mut jobs: Vec<Job<T>> = Vec::new();
    let mut path = Vec::new();
    let mut choices = Vec::new();
    let stopped = dfs(
        &root,
        &mut path,
        &mut choices,
        IdSet::empty(),
        &mut DigestMemo::new(),
        false, // no hash pruning across the expansion (memos are per job)
        Some((config.split_depth, &mut jobs)),
        &mut expansion,
        check,
        &schedules_seen,
        config,
    );
    if stopped {
        // A schedule shorter than the split depth already failed; the
        // search never split or spawned.
        let mut stats = expansion.stats;
        stats.workers = 1;
        if let Some(mut cex) = expansion.cex {
            stats.record(&config.obs);
            cex.stats = stats;
            return Err(ParExploreError::Counterexample(Box::new(cex)));
        }
    }

    let worker_count = config.workers.min(jobs.len()).max(1);
    let mut slots: Vec<Option<JobOutcome<T::Event>>> = Vec::new();
    slots.resize_with(jobs.len(), || None);

    if worker_count <= 1 {
        for (i, job) in jobs.iter().enumerate() {
            slots[i] = Some(run_job(job, check, &schedules_seen, config));
        }
    } else {
        let next = AtomicUsize::new(0);
        let jobs_ref = &jobs;
        let counter_ref = &schedules_seen;
        let collected: Vec<Vec<(usize, JobOutcome<T::Event>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..worker_count)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs_ref.len() {
                                break;
                            }
                            local.push((i, run_job(&jobs_ref[i], check, counter_ref, config)));
                        }
                        local
                    })
                })
                .collect();
            // Drain every handle before re-raising: joining all workers
            // first guarantees no straggler thread outlives the scope's
            // unwind when one worker panics (e.g. a panicking check
            // closure), so partially-claimed jobs can never race cleanup.
            let mut locals = Vec::with_capacity(worker_count);
            let mut first_panic = None;
            for h in handles {
                match h.join() {
                    Ok(local) => locals.push(local),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            locals
        });
        for (i, outcome) in collected.into_iter().flatten() {
            slots[i] = Some(outcome);
        }
    }

    // Deterministic fold: fixed job order, regardless of which worker ran
    // what; the first counterexample in job order is the one reported.
    let mut stats = expansion.stats;
    let mut first_cex: Option<Counterexample<T::Event>> = None;
    for outcome in slots.into_iter().flatten() {
        stats = stats.merged(outcome.stats);
        if first_cex.is_none() {
            first_cex = outcome.cex;
        }
    }
    stats.workers = worker_count;
    stats.wall_splits = jobs.len();
    stats.record(&config.obs);
    match first_cex {
        Some(mut cex) => {
            cex.stats = stats;
            Err(ParExploreError::Counterexample(Box::new(cex)))
        }
        None => Ok(stats),
    }
}

fn run_job<T, F>(
    job: &Job<T>,
    check: &F,
    schedules_seen: &AtomicUsize,
    config: &ParConfig,
) -> JobOutcome<T::Event>
where
    T: Explorable + Clone,
    F: Fn(&T::Report) -> Result<(), String>,
{
    let mut out = JobOutcome::new();
    let mut memo = DigestMemo::bounded(config.memo_max_entries, config.memo_max_bytes);
    let mut path = job.path.clone();
    let mut choices = job.choices.clone();
    dfs(
        &job.state,
        &mut path,
        &mut choices,
        job.appeared,
        &mut memo,
        config.hash_pruning,
        None,
        &mut out,
        check,
        schedules_seen,
        config,
    );
    out.stats.memo_entries += memo.len();
    out.stats.memo_bytes += memo.bytes();
    out.stats.memo_saturated |= memo.saturated();
    out
}

/// The depth-first walk. With `split` set this is the expansion pass:
/// nodes at the split depth become jobs instead of being descended into.
/// Returns `true` when a counterexample stopped this (sub)search.
#[allow(clippy::too_many_arguments)]
fn dfs<T, F>(
    state: &T,
    path: &mut Vec<T::Event>,
    choices: &mut Vec<usize>,
    appeared: IdSet,
    memo: &mut DigestMemo,
    prune: bool,
    mut split: Option<(usize, &mut Vec<Job<T>>)>,
    out: &mut JobOutcome<T::Event>,
    check: &F,
    schedules_seen: &AtomicUsize,
    config: &ParConfig,
) -> bool
where
    T: Explorable + Clone,
    F: Fn(&T::Report) -> Result<(), String>,
{
    let opts = state.options();
    if opts.is_empty() {
        let total = schedules_seen.fetch_add(1, Ordering::Relaxed) + 1;
        assert!(
            total <= config.max_schedules,
            "schedule exploration exceeded {} runs",
            config.max_schedules
        );
        out.stats.schedules += 1;
        out.stats.max_depth = out.stats.max_depth.max(path.len());
        if let Err(message) = check(&state.report()) {
            out.cex = Some(Counterexample {
                choices: choices.clone(),
                schedule: ScheduleTrace::from_events(path.clone()),
                message,
                stats: ExploreStats::default(), // overwritten with the fold
            });
            return true;
        }
        return false;
    }

    if let Some((depth, ref mut jobs)) = split {
        if path.len() >= depth {
            jobs.push(Job {
                state: state.clone(),
                path: path.clone(),
                choices: choices.clone(),
                appeared,
            });
            return false;
        }
    }

    out.stats.decision_points += 1;
    for (i, &event) in opts.iter().enumerate() {
        let pid = T::event_pid(&event);
        let mut appeared_next = appeared;
        if !appeared.contains(pid) {
            if config.symmetry {
                // Canonical representatives make first appearances in
                // increasing id order; everything else is a permutation
                // image of a canonical schedule.
                let next_fresh = (0..state.n())
                    .map(ProcessId::new)
                    .find(|q| !appeared.contains(*q));
                if next_fresh != Some(pid) {
                    out.stats.pruned_by_symmetry += 1;
                    continue;
                }
            }
            appeared_next.insert(pid);
        }
        let mut child = state.clone();
        child.apply(event);
        if prune {
            if let Some(key) = child.digest(config.symmetry.then_some(appeared_next)) {
                if !memo.insert(key) {
                    out.stats.pruned_by_hash += 1;
                    continue;
                }
            }
        }
        path.push(event);
        choices.push(i);
        let stop = dfs(
            &child,
            path,
            choices,
            appeared_next,
            memo,
            prune,
            match split {
                Some((depth, ref mut jobs)) => Some((depth, jobs)),
                None => None,
            },
            out,
            check,
            schedules_seen,
            config,
        );
        path.pop();
        choices.pop();
        if stop {
            return true;
        }
    }
    false
}

/// The symmetry refusal probe: run the all-first-options reference
/// schedule, then each adjacent-transposition image of it, and require
/// the per-process fingerprints to commute with the permutation.
fn probe_symmetry<T, FP>(root: &T, fingerprint: &FP) -> Result<(), String>
where
    T: Explorable + Clone,
    FP: Fn(&T::Report) -> Vec<Vec<u8>>,
{
    let n = root.n();
    let mut state = root.clone();
    let mut events = Vec::new();
    loop {
        let opts = state.options();
        let Some(&event) = opts.first() else { break };
        state.apply(event);
        events.push(event);
        assert!(
            events.len() <= 1_000_000,
            "symmetry probe exceeded 1000000 events; protocol does not terminate"
        );
    }
    let base = fingerprint(&state.report());
    if base.len() != n {
        return Err(format!(
            "symmetry reduction needs one fingerprint part per process (got {}, n = {n})",
            base.len()
        ));
    }
    for k in 0..n.saturating_sub(1) {
        let perm: Vec<usize> = (0..n)
            .map(|i| {
                if i == k {
                    k + 1
                } else if i == k + 1 {
                    k
                } else {
                    i
                }
            })
            .collect();
        let mut image = root.clone();
        for event in &events {
            let permuted = T::permute_event(event, &perm);
            if !image.options().contains(&permuted) {
                return Err(format!(
                    "instance is not id-symmetric: the schedule permuted by swapping \
                     p{k} and p{} is not runnable",
                    k + 1
                ));
            }
            image.apply(permuted);
        }
        if !image.options().is_empty() {
            return Err(format!(
                "instance is not id-symmetric: the schedule permuted by swapping \
                 p{k} and p{} does not complete",
                k + 1
            ));
        }
        let parts = fingerprint(&image.report());
        if parts.len() != n {
            return Err(format!(
                "symmetry reduction needs one fingerprint part per process (got {}, n = {n})",
                parts.len()
            ));
        }
        for i in 0..n {
            if parts[perm[i]] != base[i] {
                return Err(format!(
                    "instance is not id-symmetric: swapping p{k} and p{} changes \
                     p{i}'s outcome fingerprint",
                    k + 1
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_schedules_checked;
    use crate::shared_mem::{Action, Observation};
    use crate::trace::ScheduleReplay;
    use rrfd_core::SystemSize;

    /// Id-symmetric: writes a constant, reads the next process's cell,
    /// decides what it saw.
    #[derive(Debug, Clone)]
    struct RingRead {
        me: ProcessId,
        n: usize,
    }

    impl MemProcess<u64> for RingRead {
        type Output = Option<u64>;
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
            match obs {
                Observation::Start => Action::Write { bank: 0, value: 7 },
                Observation::Written => Action::Read {
                    bank: 0,
                    owner: ProcessId::new((self.me.index() + 1) % self.n),
                },
                Observation::Value(v) => Action::Decide(v),
                other => unreachable!("{other:?}"),
            }
        }
    }

    impl StateDigest for RingRead {
        fn digest(&self, w: &mut DigestWriter) {
            self.me.digest(w);
            self.n.digest(w);
        }
    }

    fn ring(n: usize) -> Vec<RingRead> {
        (0..n)
            .map(|i| RingRead {
                me: ProcessId::new(i),
                n,
            })
            .collect()
    }

    /// Id-dependent: writes `me + 1`, so outcomes do not commute with id
    /// permutations.
    #[derive(Debug, Clone)]
    struct WriteRead {
        me: ProcessId,
    }

    impl MemProcess<u64> for WriteRead {
        type Output = Option<u64>;
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
            match obs {
                Observation::Start => Action::Write {
                    bank: 0,
                    value: self.me.index() as u64 + 1,
                },
                Observation::Written => Action::Read {
                    bank: 0,
                    owner: ProcessId::new(1 - self.me.index()),
                },
                Observation::Value(v) => Action::Decide(v),
                other => unreachable!("{other:?}"),
            }
        }
    }

    impl StateDigest for WriteRead {
        fn digest(&self, w: &mut DigestWriter) {
            self.me.digest(w);
        }
    }

    fn make_pair() -> Vec<WriteRead> {
        vec![
            WriteRead {
                me: ProcessId::new(0),
            },
            WriteRead {
                me: ProcessId::new(1),
            },
        ]
    }

    fn size(n: usize) -> SystemSize {
        SystemSize::new(n).unwrap()
    }

    #[test]
    fn matches_sequential_schedule_count_without_pruning() {
        let sim = SharedMemSim::new(size(2), 1);
        let seq = explore_schedules_checked(&sim, make_pair, |_| Ok(()), 10_000).unwrap();
        for workers in [1, 2, 8] {
            let config = ParConfig::new(workers).hash_pruning(false);
            let par = explore_shared_mem_par(&sim, make_pair, |_| Ok(()), no_fingerprint, &config)
                .unwrap();
            // C(6,3) = 20 complete interleavings either way.
            assert_eq!(par.schedules, seq.schedules, "workers {workers}");
            assert_eq!(par.schedules, 20);
            assert_eq!(par.max_depth, seq.max_depth);
            assert_eq!(par.pruned_by_hash, 0);
            assert_eq!(par.pruned_by_symmetry, 0);
            assert!(par.wall_splits > 0);
        }
    }

    #[test]
    fn hash_pruning_is_lossless_for_counterexample_existence() {
        let sim = SharedMemSim::new(size(2), 1);
        let check = |report: &MemRunReport<WriteRead, u64>| {
            if report.outputs.iter().any(|o| o == &Some(None)) {
                Err("someone missed the other's write".to_owned())
            } else {
                Ok(())
            }
        };
        let config = ParConfig::new(4);
        let err =
            explore_shared_mem_par(&sim, make_pair, check, no_fingerprint, &config).unwrap_err();
        let ParExploreError::Counterexample(cex) = err else {
            panic!("expected a counterexample");
        };
        // The certificate replays to the same violation.
        let reparsed: ScheduleTrace<MemEvent> = cex.schedule.to_string().parse().unwrap();
        let mut replay = ScheduleReplay::from_trace(&reparsed);
        let report = sim.run(make_pair(), &mut replay).unwrap();
        assert!(report.outputs.iter().any(|o| o == &Some(None)));
        assert!(cex.stats.max_depth > 0, "partial depth must be folded in");
    }

    #[test]
    fn hash_pruning_skips_converged_states() {
        // Three writers to distinct cells commute heavily: pruning must
        // fire and still enumerate fewer nodes than the full tree.
        let sim = SharedMemSim::new(size(3), 1);
        let pruned = explore_shared_mem_par(
            &sim,
            || ring(3),
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(2),
        )
        .unwrap();
        let full = explore_shared_mem_par(
            &sim,
            || ring(3),
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(2).hash_pruning(false),
        )
        .unwrap();
        assert!(pruned.pruned_by_hash > 0);
        assert!(
            pruned.decision_points < full.decision_points,
            "pruned {} vs full {}",
            pruned.decision_points,
            full.decision_points
        );
        assert_eq!(full.schedules, 1680); // 9!/(3!3!3!)
    }

    #[test]
    fn symmetry_refuses_an_id_dependent_protocol() {
        let sim = SharedMemSim::new(size(2), 1);
        let config = ParConfig::new(2).symmetry(true);
        let err =
            explore_shared_mem_par(&sim, make_pair, |_| Ok(()), mem_output_fingerprint, &config)
                .unwrap_err();
        match err {
            ParExploreError::SymmetryRejected(why) => {
                assert!(why.contains("not id-symmetric"), "{why}");
            }
            other => panic!("expected a symmetry refusal, got {other:?}"),
        }
    }

    #[test]
    fn symmetry_requires_a_fingerprint() {
        let sim = SharedMemSim::new(size(2), 1);
        let config = ParConfig::new(2).symmetry(true);
        let err = explore_shared_mem_par(&sim, || ring(2), |_| Ok(()), no_fingerprint, &config)
            .unwrap_err();
        assert!(matches!(err, ParExploreError::SymmetryRejected(_)));
    }

    #[test]
    fn symmetry_quotients_a_symmetric_protocol() {
        let sim = SharedMemSim::new(size(2), 1);
        let quotient = explore_shared_mem_par(
            &sim,
            || ring(2),
            |_| Ok(()),
            mem_output_fingerprint,
            &ParConfig::new(2).symmetry(true).hash_pruning(false),
        )
        .unwrap();
        let full = explore_shared_mem_par(
            &sim,
            || ring(2),
            |_| Ok(()),
            mem_output_fingerprint,
            &ParConfig::new(2).hash_pruning(false),
        )
        .unwrap();
        assert!(quotient.pruned_by_symmetry > 0);
        assert_eq!(full.schedules, 20);
        // Canonical schedules start with p0; the quotient halves the tree.
        assert_eq!(quotient.schedules, 10);
    }

    #[test]
    fn wrong_process_count_is_a_typed_error() {
        let sim = SharedMemSim::new(size(3), 1);
        let err = explore_shared_mem_par(
            &sim,
            || ring(2), // two processes for a system of three
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(1),
        )
        .unwrap_err();
        assert!(matches!(err, ParExploreError::Misconfigured(_)));
    }

    #[test]
    #[should_panic(expected = "exceeded 5 runs")]
    fn schedule_guard_fires() {
        let sim = SharedMemSim::new(size(2), 1);
        let config = ParConfig::new(1).hash_pruning(false).max_schedules(5);
        let _ = explore_shared_mem_par(&sim, make_pair, |_| Ok(()), no_fingerprint, &config);
    }

    #[test]
    fn semi_sync_parallel_agrees_with_sequential() {
        use crate::explore::semi_sync::explore_semi_sync_checked;
        use rrfd_core::Control;

        /// Broadcasts once; decides after two steps on who it heard.
        #[derive(Debug, Clone)]
        struct Listen {
            steps: u64,
            heard: IdSet,
            sent: bool,
        }
        impl SemiSyncProcess for Listen {
            type Msg = ();
            type Output = usize;
            fn step(
                &mut self,
                received: &[(ProcessId, std::sync::Arc<()>)],
            ) -> (Option<()>, Control<usize>) {
                self.steps += 1;
                for &(from, _) in received {
                    self.heard.insert(from);
                }
                let msg = (!self.sent).then(|| self.sent = true);
                if self.steps >= 2 {
                    (msg, Control::Decide(self.heard.len()))
                } else {
                    (msg, Control::Continue)
                }
            }
        }
        impl StateDigest for Listen {
            fn digest(&self, w: &mut DigestWriter) {
                self.steps.digest(w);
                self.heard.digest(w);
                self.sent.digest(w);
            }
        }

        let sim = SemiSyncSim::new(size(2));
        let make = || {
            (0..2)
                .map(|_| Listen {
                    steps: 0,
                    heard: IdSet::empty(),
                    sent: false,
                })
                .collect::<Vec<_>>()
        };
        let check = |report: &SemiSyncReport<Listen>| {
            if report.outputs.iter().flatten().any(|(heard, _)| *heard < 2) {
                Err("someone heard fewer than two processes".to_owned())
            } else {
                Ok(())
            }
        };

        // One allowed crash: both walkers must find a violation, and the
        // parallel certificate must replay to it.
        let seq = explore_semi_sync_checked(&sim, 1, make, check, 100_000).unwrap_err();
        let par = explore_semi_sync_par(&sim, 1, make, check, no_fingerprint, &ParConfig::new(4))
            .unwrap_err();
        let ParExploreError::Counterexample(cex) = par else {
            panic!("expected a counterexample");
        };
        let mut replay = ScheduleReplay::from_trace(&cex.schedule);
        let report = sim.run(make(), &mut replay).unwrap();
        assert!(report.outputs.iter().flatten().any(|(heard, _)| *heard < 2));
        assert!(!seq.message.is_empty());

        // Crash-free, the protocol is clean: schedule counts agree with
        // the sequential walker when pruning is off.
        let ok = |_: &SemiSyncReport<Listen>| Ok(());
        let seq_total = explore_semi_sync_checked(&sim, 0, make, ok, 100_000).unwrap();
        let par_total = explore_semi_sync_par(
            &sim,
            0,
            make,
            ok,
            no_fingerprint,
            &ParConfig::new(2).hash_pruning(false),
        )
        .unwrap();
        assert_eq!(par_total.schedules, seq_total.schedules);
    }

    #[test]
    fn memo_cap_degrades_to_fewer_prunes_never_wrong() {
        let sim = SharedMemSim::new(size(3), 1);
        let unbounded = explore_shared_mem_par(
            &sim,
            || ring(3),
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(2),
        )
        .unwrap();
        assert!(unbounded.pruned_by_hash > 0);
        assert!(unbounded.memo_entries > 0);
        assert!(unbounded.memo_bytes > 0);
        assert!(!unbounded.memo_saturated);

        // Entry cap 0: nothing is ever memoized, so nothing is ever
        // pruned — the walk degenerates to the full 9!/(3!3!3!) = 1680
        // schedule tree, proving the degrade is "fewer prunes", not
        // "wrong prunes".
        let starved = explore_shared_mem_par(
            &sim,
            || ring(3),
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(2).memo_cap(0, usize::MAX),
        )
        .unwrap();
        assert!(starved.memo_saturated);
        assert_eq!(starved.pruned_by_hash, 0);
        assert_eq!(starved.memo_entries, 0);
        assert_eq!(starved.memo_bytes, 0);
        assert_eq!(starved.schedules, 1680);

        // A small per-job entry cap saturates mid-search: no more prunes
        // than unbounded, and every schedule the unbounded walk reached
        // is still reached (pruning only ever removes revisits).
        let capped = explore_shared_mem_par(
            &sim,
            || ring(3),
            |_| Ok(()),
            no_fingerprint,
            &ParConfig::new(2).memo_cap(3, usize::MAX),
        )
        .unwrap();
        assert!(capped.memo_saturated);
        assert!(capped.pruned_by_hash <= unbounded.pruned_by_hash);
        assert!(capped.memo_entries <= unbounded.memo_entries);
        assert!(capped.schedules >= unbounded.schedules);
        assert!(capped.schedules <= 1680);
    }

    #[test]
    fn panicking_check_drains_all_workers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Decrement-on-drop guard: runs on panic unwind too, so
        /// `started == finished` exactly when no check invocation is
        /// still in flight on a straggler thread.
        struct Finished<'a>(&'a AtomicUsize);
        impl Drop for Finished<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let started = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let sim = SharedMemSim::new(size(3), 1);
        let config = ParConfig::new(4).hash_pruning(false);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _ = explore_shared_mem_par(
                &sim,
                || ring(3),
                |_: &MemRunReport<RingRead, u64>| -> Result<(), String> {
                    started.fetch_add(1, Ordering::SeqCst);
                    let _guard = Finished(&finished);
                    panic!("boom");
                },
                no_fingerprint,
                &config,
            );
        }))
        .unwrap_err();
        // The first worker's payload is re-raised verbatim after every
        // handle has been joined.
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("boom"));
        // Multiple workers panicked concurrently; all of them must have
        // been drained before the unwind reached us.
        let s = started.load(Ordering::SeqCst);
        let f = finished.load(Ordering::SeqCst);
        assert!(s >= 1, "no check ever ran");
        assert_eq!(s, f, "a worker outlived the re-raised panic");
    }

    #[test]
    fn stats_are_recorded_through_the_obs_seam() {
        use rrfd_obs::{names, Labels, MetricValue, Obs};

        let sim = SharedMemSim::new(size(3), 1);
        let obs = Obs::logical();
        let config = ParConfig::new(2).obs(obs.clone());
        let stats =
            explore_shared_mem_par(&sim, || ring(3), |_| Ok(()), no_fingerprint, &config).unwrap();

        let snap = obs.snapshot();
        assert_eq!(
            snap.counter_total(names::EXPLORE_SCHEDULES),
            stats.schedules as u64
        );
        assert_eq!(
            snap.counter_total(names::EXPLORE_DECISION_POINTS),
            stats.decision_points
        );
        assert_eq!(
            snap.counter_total(names::EXPLORE_PRUNED_HASH),
            stats.pruned_by_hash
        );
        assert_eq!(
            snap.counter_total(names::EXPLORE_SPLITS),
            stats.wall_splits as u64
        );
        assert_eq!(
            snap.get(names::EXPLORE_MAX_DEPTH, Labels::GLOBAL),
            Some(&MetricValue::Gauge(stats.max_depth as i64))
        );
        assert_eq!(
            snap.get(names::EXPLORE_WORKERS, Labels::GLOBAL),
            Some(&MetricValue::Gauge(stats.workers as i64))
        );
        assert_eq!(
            snap.get(names::EXPLORE_MEMO_ENTRIES, Labels::GLOBAL),
            Some(&MetricValue::Gauge(stats.memo_entries as i64))
        );
        assert_eq!(
            snap.get(names::EXPLORE_MEMO_SATURATED, Labels::GLOBAL),
            Some(&MetricValue::Gauge(0))
        );

        // A counterexample-aborted search still records its partial effort.
        let obs_err = Obs::logical();
        let check = |report: &MemRunReport<WriteRead, u64>| {
            if report.outputs.iter().any(|o| o == &Some(None)) {
                Err("missed write".to_owned())
            } else {
                Ok(())
            }
        };
        let sim2 = SharedMemSim::new(size(2), 1);
        let err = explore_shared_mem_par(
            &sim2,
            make_pair,
            check,
            no_fingerprint,
            &ParConfig::new(2).obs(obs_err.clone()),
        )
        .unwrap_err();
        let ParExploreError::Counterexample(cex) = err else {
            panic!("expected a counterexample");
        };
        let snap_err = obs_err.snapshot();
        assert_eq!(
            snap_err.counter_total(names::EXPLORE_SCHEDULES),
            cex.stats.schedules as u64
        );
    }

    #[test]
    fn runs_are_deterministic_per_configuration() {
        let sim = SharedMemSim::new(size(3), 1);
        let config = ParConfig::new(4);
        let one =
            explore_shared_mem_par(&sim, || ring(3), |_| Ok(()), no_fingerprint, &config).unwrap();
        let two =
            explore_shared_mem_par(&sim, || ring(3), |_| Ok(()), no_fingerprint, &config).unwrap();
        assert_eq!(format!("{one:?}"), format!("{two:?}"));
    }
}
