//! §2 item 6: the asynchronous system augmented with the strong failure
//! detector **S** of Chandra-Toueg.
//!
//! In system N, all but one (a priori unknown) process may crash; the
//! detector eventually suspects every real crash and never suspects at
//! least one correct process. "Processes use the failure detector S to
//! advance from one round to the next — `D(i,r)` is the value that allows
//! `p_i` to complete round `r`."
//!
//! [`SAugmentedSystem`] packages a ground-truth crash schedule and a seeded
//! unreliable-suspicion source as an [`rrfd_core::FaultDetector`]: at each
//! round it hands every process a suspicion set that (a) contains every
//! process crashed so far — a crashed process sends no more messages, so
//! waiting on it would block forever, and (b) never contains the designated
//! immortal. Everything else fluctuates arbitrarily, matching S's
//! unreliability. The produced patterns satisfy the `P6` predicate by
//! construction, which is the E12 extraction check.

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::{Rng, SeedableRng};
use rrfd_core::{FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, SystemSize};

/// A crash schedule plus an S-style unreliable suspicion source.
#[derive(Debug, Clone)]
pub struct SAugmentedSystem {
    n: SystemSize,
    immortal: ProcessId,
    /// `crash_round[i] = Some(r)`: `p_i` crashes at the start of round `r`.
    crash_round: Vec<Option<Round>>,
    rng: StdRng,
    /// Probability that a live, non-immortal process is wrongly suspected
    /// by a given process in a given round.
    false_suspicion_prob: f64,
}

impl SAugmentedSystem {
    /// Creates the system: `immortal` never crashes and is never suspected;
    /// every other process listed in `crash_round` crashes at its round.
    ///
    /// # Panics
    ///
    /// Panics if the immortal is scheduled to crash, or the schedule length
    /// mismatches `n`.
    #[must_use]
    pub fn new(
        n: SystemSize,
        immortal: ProcessId,
        crash_round: Vec<Option<Round>>,
        seed: u64,
    ) -> Self {
        assert_eq!(crash_round.len(), n.get(), "one schedule slot per process");
        assert!(
            crash_round[immortal.index()].is_none(),
            "the immortal process cannot crash"
        );
        SAugmentedSystem {
            n,
            immortal,
            crash_round,
            rng: StdRng::seed_from_u64(seed),
            false_suspicion_prob: 0.2,
        }
    }

    /// Creates a system where everyone except the immortal crashes at a
    /// random round in `1..=horizon` with probability 1/2 — the "all but
    /// one may fail" regime of item 6.
    #[must_use]
    pub fn random(n: SystemSize, horizon: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let immortal = ProcessId::new(rng.gen_range(0..n.get()));
        let crash_round = n
            .processes()
            .map(|p| {
                (p != immortal && rng.gen_bool(0.5)).then(|| Round::new(rng.gen_range(1..=horizon)))
            })
            .collect();
        SAugmentedSystem {
            n,
            immortal,
            crash_round,
            rng,
            false_suspicion_prob: 0.2,
        }
    }

    /// The never-suspected correct process.
    #[must_use]
    pub fn immortal(&self) -> ProcessId {
        self.immortal
    }

    /// Processes crashed at or before `round`.
    #[must_use]
    pub fn crashed_by(&self, round: Round) -> IdSet {
        self.n
            .processes()
            .filter(|&p| matches!(self.crash_round[p.index()], Some(c) if c <= round))
            .collect()
    }
}

impl FaultDetector for SAugmentedSystem {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        let crashed = self.crashed_by(round);
        let falsely_suspectable: IdSet =
            (IdSet::universe(self.n) - crashed) - IdSet::singleton(self.immortal);
        let sets = self
            .n
            .processes()
            .map(|_| {
                let mut d = crashed;
                for q in falsely_suspectable.iter() {
                    if self.rng.gen_bool(self.false_suspicion_prob) {
                        d.insert(q);
                    }
                }
                d
            })
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

/// Picks a uniformly random immortal process — convenience for experiment
/// sweeps that want the immortal hidden from the algorithm under test.
#[must_use]
pub fn random_immortal(n: SystemSize, seed: u64) -> ProcessId {
    let mut rng = StdRng::seed_from_u64(seed);
    n.processes().choose(&mut rng).expect("non-empty system")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::validate_round;
    use rrfd_models::predicates::DetectorS;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn produced_patterns_satisfy_p6() {
        let size = n(6);
        for seed in 0..10u64 {
            let mut sys = SAugmentedSystem::random(size, 5, seed);
            let model = DetectorS::new(size);
            let mut history = FaultPattern::new(size);
            for r in 1..=8 {
                let round = sys.next_round(Round::new(r), &history);
                assert!(
                    validate_round(&model, &history, &round).is_ok(),
                    "seed {seed} round {r} violated P6"
                );
                history.push(round);
            }
            assert!(!history.cumulative_union().contains(sys.immortal()));
        }
    }

    #[test]
    fn crashes_are_suspected_by_everyone_once_crashed() {
        let size = n(4);
        let schedule = vec![None, Some(Round::new(2)), None, None];
        let mut sys = SAugmentedSystem::new(size, ProcessId::new(0), schedule, 1);
        let mut history = FaultPattern::new(size);
        for r in 1..=4 {
            let round = sys.next_round(Round::new(r), &history);
            if r >= 2 {
                for i in size.processes() {
                    assert!(
                        round.of(i).contains(ProcessId::new(1)),
                        "round {r}: {i} does not suspect the crashed p1"
                    );
                }
            }
            history.push(round);
        }
    }

    #[test]
    fn immortal_cannot_be_scheduled_to_crash() {
        let size = n(3);
        let schedule = vec![Some(Round::new(1)), None, None];
        let result = std::panic::catch_unwind(|| {
            SAugmentedSystem::new(size, ProcessId::new(0), schedule, 0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn false_suspicions_do_happen_and_heal() {
        // Over several rounds, some live process should be suspected in one
        // round and trusted again in another — S's unreliability.
        let size = n(5);
        let mut sys = SAugmentedSystem::new(size, ProcessId::new(0), vec![None; 5], 7);
        let mut history = FaultPattern::new(size);
        let mut suspected_then_trusted = false;
        let mut prev: Option<RoundFaults> = None;
        for r in 1..=20 {
            let round = sys.next_round(Round::new(r), &history);
            if let Some(prev) = &prev {
                for i in size.processes() {
                    let before = prev.of(i);
                    let now = round.of(i);
                    if !(before - now).is_empty() {
                        suspected_then_trusted = true;
                    }
                }
            }
            prev = Some(round.clone());
            history.push(round);
        }
        assert!(suspected_then_trusted, "suspicions never healed");
    }
}
