//! Asynchronous shared-memory simulator: SWMR register banks with an
//! adversarial step scheduler and crash faults (§2 items 4 and 5).
//!
//! The memory is organised in *banks* of single-writer multi-reader cells:
//! bank `b` holds one cell per process, writable only by its owner. A
//! process is a step machine ([`MemProcess`]): each scheduled step performs
//! exactly one primitive operation — a write to one of its own cells, a
//! read of a single cell, or (when the simulated system provides it, item 5)
//! an **atomic snapshot** of a whole bank. The one-op-per-step discipline is
//! what gives the scheduler real adversarial power: interleavings between a
//! write and the reads that follow it are all reachable.
//!
//! Crash faults are injected by the scheduler ([`MemEvent::Crash`]); a
//! crashed process takes no further steps. The simulator itself is
//! deterministic given the scheduler, so any run can be replayed from a
//! seed.

use crate::digest::{DigestWriter, StateDigest};
use rrfd_core::{IdSet, ProcessId, SystemSize};
use std::fmt;

/// One primitive operation per scheduled step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<V, O> {
    /// Write `value` into this process's cell of bank `bank`.
    Write {
        /// Target bank.
        bank: usize,
        /// Value to store.
        value: V,
    },
    /// Read the cell of `owner` in `bank`; the value arrives in the next
    /// step's [`Observation::Value`].
    Read {
        /// Bank to read from.
        bank: usize,
        /// Whose cell to read.
        owner: ProcessId,
    },
    /// Atomically read a whole bank (item 5's snapshot object). Only legal
    /// when the simulator was built with [`SharedMemSim::with_snapshots`].
    Snapshot {
        /// Bank to snapshot.
        bank: usize,
    },
    /// Propose `value` to one-shot k-set-consensus object `object` (the
    /// oracle of Theorem 3.3). Only legal when the simulator was built
    /// with [`SharedMemSim::with_kset_objects`]. The chosen value arrives
    /// in the next step's [`Observation::Chosen`].
    Propose {
        /// Which oracle object.
        object: usize,
        /// The proposed value.
        value: u64,
    },
    /// Commit to an output and halt.
    Decide(O),
}

/// What a step observes: the result of its previous action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation<V> {
    /// First step of the run; there is no previous action.
    Start,
    /// The previous write completed.
    Written,
    /// The value read by the previous [`Action::Read`] (`None`: unwritten).
    Value(Option<V>),
    /// The bank contents captured by the previous [`Action::Snapshot`],
    /// indexed by owner.
    SnapshotView(Vec<Option<V>>),
    /// The value chosen by the previous [`Action::Propose`]: one of the
    /// values proposed to that object so far; at most `k` distinct values
    /// are ever chosen per object.
    Chosen(u64),
}

/// A process driven by the shared-memory simulator.
pub trait MemProcess<V> {
    /// Decision type.
    type Output;

    /// Consumes the previous action's result and issues the next action.
    fn step(&mut self, obs: Observation<V>) -> Action<V, Self::Output>;
}

/// Scheduler events: who steps next, or who crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// The given process takes its next step.
    Step(ProcessId),
    /// The given process crashes (takes no further steps).
    Crash(ProcessId),
}

/// Chooses the interleaving (and the crashes). The simulator guarantees the
/// scheduler is only asked while some process is still runnable, and
/// ignores events aimed at processes that already decided or crashed.
pub trait MemScheduler {
    /// Picks the next event given the set of runnable processes.
    fn next_event(&mut self, runnable: IdSet, step: u64) -> MemEvent;
}

/// Errors from [`SharedMemSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemSimError {
    /// A process issued [`Action::Snapshot`] but the simulated system has
    /// no snapshot object.
    SnapshotUnavailable {
        /// The offending process.
        process: ProcessId,
    },
    /// A process issued [`Action::Propose`] but the simulated system has
    /// no (or not that many) k-set-consensus objects.
    OracleUnavailable {
        /// The offending process.
        process: ProcessId,
        /// The object index it addressed.
        object: usize,
    },
    /// A process addressed a bank beyond the configured count.
    BankOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The bank it addressed.
        bank: usize,
    },
    /// The step budget elapsed with runnable processes remaining (the
    /// scheduler starved someone or the protocol does not terminate).
    StepLimitExceeded {
        /// The configured limit.
        max_steps: u64,
    },
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
}

impl fmt::Display for MemSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSimError::SnapshotUnavailable { process } => {
                write!(f, "{process} used a snapshot in a register-only system")
            }
            MemSimError::OracleUnavailable { process, object } => {
                write!(f, "{process} proposed to missing k-set object {object}")
            }
            MemSimError::BankOutOfRange { process, bank } => {
                write!(f, "{process} addressed bank {bank}, which does not exist")
            }
            MemSimError::StepLimitExceeded { max_steps } => {
                write!(f, "runnable processes remain after {max_steps} steps")
            }
            MemSimError::WrongProcessCount { supplied, expected } => {
                write!(
                    f,
                    "{supplied} processes supplied for a system of {expected}"
                )
            }
        }
    }
}

impl std::error::Error for MemSimError {}

/// Outcome of a shared-memory run. Final process states are returned so
/// callers can extract protocol-internal logs (e.g. the recorded `D(i,r)`
/// sets of the Theorem 4.3 simulation).
#[derive(Debug, Clone)]
pub struct MemRunReport<P: MemProcess<V>, V> {
    /// `outputs[i]` is `Some` if `p_i` decided.
    pub outputs: Vec<Option<P::Output>>,
    /// Processes crashed by the scheduler.
    pub crashed: IdSet,
    /// Total primitive steps executed.
    pub steps: u64,
    /// Final process states.
    pub processes: Vec<P>,
    marker: std::marker::PhantomData<V>,
}

impl<P: MemProcess<V>, V> MemRunReport<P, V> {
    /// `true` when every non-crashed process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.outputs
            .iter()
            .enumerate()
            .all(|(i, o)| o.is_some() || self.crashed.contains(ProcessId::new(i)))
    }
}

/// The simulator: `n` processes over `banks` SWMR banks.
///
/// # Examples
///
/// A one-shot "write then read your left neighbour" protocol:
///
/// ```
/// use rrfd_core::{IdSet, ProcessId, SystemSize};
/// use rrfd_sims::shared_mem::{
///     Action, FairScheduler, MemProcess, Observation, SharedMemSim,
/// };
///
/// struct WriteRead {
///     me: ProcessId,
///     n: usize,
/// }
/// impl MemProcess<u64> for WriteRead {
///     type Output = Option<u64>;
///     fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
///         match obs {
///             Observation::Start => Action::Write { bank: 0, value: self.me.index() as u64 },
///             Observation::Written => Action::Read {
///                 bank: 0,
///                 owner: ProcessId::new((self.me.index() + 1) % self.n),
///             },
///             Observation::Value(v) => Action::Decide(v),
///             other => unreachable!("{other:?}"),
///         }
///     }
/// }
///
/// let n = SystemSize::new(3).unwrap();
/// let procs: Vec<_> = n.processes().map(|p| WriteRead { me: p, n: 3 }).collect();
/// let report = SharedMemSim::new(n, 1)
///     .run(procs, &mut FairScheduler::new())
///     .unwrap();
/// assert!(report.all_correct_decided());
/// ```
#[derive(Debug, Clone)]
pub struct SharedMemSim {
    n: SystemSize,
    banks: usize,
    snapshots: bool,
    kset_objects: usize,
    kset_k: usize,
    kset_seed: u64,
    max_steps: u64,
}

/// Default step budget.
pub const DEFAULT_MAX_STEPS: u64 = 10_000_000;

impl SharedMemSim {
    /// A register-only system (no snapshot object) with `banks` SWMR banks.
    #[must_use]
    pub fn new(n: SystemSize, banks: usize) -> Self {
        SharedMemSim {
            n,
            banks,
            snapshots: false,
            kset_objects: 0,
            kset_k: 0,
            kset_seed: 0,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Enables the atomic-snapshot object (item 5's system).
    #[must_use]
    pub fn with_snapshots(mut self) -> Self {
        self.snapshots = true;
        self
    }

    /// Equips the system with `count` one-shot k-set-consensus objects
    /// with agreement parameter `k` (the oracle Theorem 3.3 assumes).
    /// Each object returns, wait-free, one of the values proposed to it so
    /// far, choosing (seeded by `seed`) which proposals become decidable,
    /// with at most `k` distinct values ever returned.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` while `count > 0`.
    #[must_use]
    pub fn with_kset_objects(mut self, count: usize, k: usize, seed: u64) -> Self {
        assert!(count == 0 || k >= 1, "k-set objects need k >= 1");
        self.kset_objects = count;
        self.kset_k = k;
        self.kset_seed = seed;
        self
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The system size.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Runs the processes under `scheduler` until every process has decided
    /// or crashed.
    ///
    /// # Errors
    ///
    /// See [`MemSimError`].
    pub fn run<V, P, S>(
        &self,
        processes: Vec<P>,
        scheduler: &mut S,
    ) -> Result<MemRunReport<P, V>, MemSimError>
    where
        V: Clone,
        P: MemProcess<V>,
        S: MemScheduler + ?Sized,
    {
        let mut exec = MemExecution::start(self, processes)?;
        loop {
            let live = exec.runnable();
            if live.is_empty() {
                return Ok(exec.into_report());
            }
            if exec.at_limit() {
                return Err(MemSimError::StepLimitExceeded {
                    max_steps: self.max_steps,
                });
            }
            let event = scheduler.next_event(live, exec.steps());
            exec.apply(event)?;
        }
    }
}

/// The state of one shared-memory run, advanced one scheduler event at a
/// time. [`SharedMemSim::run`] is a loop over this object; the parallel
/// explorer ([`crate::explore_par`]) instead *clones* it at every decision
/// point, turning the schedule tree into an explicit-state search in which
/// shared prefixes are executed once instead of once per schedule.
#[derive(Debug)]
pub struct MemExecution<P: MemProcess<V>, V> {
    sim: SharedMemSim,
    cells: Vec<Option<V>>,
    oracles: Vec<KSetObject>,
    pending: Vec<Observation<V>>,
    outputs: Vec<Option<P::Output>>,
    crashed: IdSet,
    steps: u64,
    // Scheduler events (including crashes and no-op picks) are bounded
    // separately so a scheduler that keeps naming non-runnable processes
    // cannot spin the simulator forever.
    events: u64,
    processes: Vec<P>,
}

impl<P, V> Clone for MemExecution<P, V>
where
    P: MemProcess<V> + Clone,
    P::Output: Clone,
    V: Clone,
{
    fn clone(&self) -> Self {
        MemExecution {
            sim: self.sim.clone(),
            cells: self.cells.clone(),
            oracles: self.oracles.clone(),
            pending: self.pending.clone(),
            outputs: self.outputs.clone(),
            crashed: self.crashed,
            steps: self.steps,
            events: self.events,
            processes: self.processes.clone(),
        }
    }
}

impl<P: MemProcess<V>, V: Clone> MemExecution<P, V> {
    /// Begins a run of `processes` on `sim`, before any event.
    ///
    /// # Errors
    ///
    /// [`MemSimError::WrongProcessCount`] when the protocol vector does
    /// not match the system size.
    pub fn start(sim: &SharedMemSim, processes: Vec<P>) -> Result<Self, MemSimError> {
        let n = sim.n.get();
        if processes.len() != n {
            return Err(MemSimError::WrongProcessCount {
                supplied: processes.len(),
                expected: n,
            });
        }
        Ok(MemExecution {
            sim: sim.clone(),
            cells: vec![None; sim.banks * n],
            oracles: (0..sim.kset_objects)
                .map(|i| KSetObject::new(sim.kset_k, sim.kset_seed.wrapping_add(i as u64)))
                .collect(),
            pending: vec![Observation::Start; n],
            outputs: (0..n).map(|_| None).collect(),
            crashed: IdSet::empty(),
            steps: 0,
            events: 0,
            processes,
        })
    }

    /// Processes that are neither decided nor crashed. Empty exactly when
    /// the run is complete.
    #[must_use]
    pub fn runnable(&self) -> IdSet {
        (0..self.sim.n.get())
            .map(ProcessId::new)
            .filter(|&p| self.outputs[p.index()].is_none() && !self.crashed.contains(p))
            .collect()
    }

    /// Primitive steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Applies one scheduler event. Events naming a non-runnable process
    /// are counted but otherwise ignored, mirroring [`SharedMemSim::run`].
    ///
    /// # Errors
    ///
    /// See [`MemSimError`].
    pub fn apply(&mut self, event: MemEvent) -> Result<(), MemSimError> {
        if self.at_limit() {
            return Err(MemSimError::StepLimitExceeded {
                max_steps: self.sim.max_steps,
            });
        }
        self.events += 1;
        let live = self.runnable();
        match event {
            MemEvent::Crash(p) => {
                if live.contains(p) {
                    self.crashed.insert(p);
                }
            }
            MemEvent::Step(p) => {
                if !live.contains(p) {
                    return Ok(());
                }
                self.steps += 1;
                let n = self.sim.n.get();
                let idx = p.index();
                let obs = std::mem::replace(&mut self.pending[idx], Observation::Start);
                match self.processes[idx].step(obs) {
                    Action::Write { bank, value } => {
                        if bank >= self.sim.banks {
                            return Err(MemSimError::BankOutOfRange { process: p, bank });
                        }
                        self.cells[bank * n + idx] = Some(value);
                        self.pending[idx] = Observation::Written;
                    }
                    Action::Read { bank, owner } => {
                        if bank >= self.sim.banks {
                            return Err(MemSimError::BankOutOfRange { process: p, bank });
                        }
                        self.pending[idx] =
                            Observation::Value(self.cells[bank * n + owner.index()].clone());
                    }
                    Action::Snapshot { bank } => {
                        if !self.sim.snapshots {
                            return Err(MemSimError::SnapshotUnavailable { process: p });
                        }
                        if bank >= self.sim.banks {
                            return Err(MemSimError::BankOutOfRange { process: p, bank });
                        }
                        let view = self.cells[bank * n..(bank + 1) * n].to_vec();
                        self.pending[idx] = Observation::SnapshotView(view);
                    }
                    Action::Propose { object, value } => {
                        let Some(oracle) = self.oracles.get_mut(object) else {
                            return Err(MemSimError::OracleUnavailable { process: p, object });
                        };
                        self.pending[idx] = Observation::Chosen(oracle.propose(value));
                    }
                    Action::Decide(out) => {
                        self.outputs[idx] = Some(out);
                    }
                }
            }
        }
        Ok(())
    }

    fn at_limit(&self) -> bool {
        let event_limit = self.sim.max_steps.saturating_mul(4).saturating_add(1024);
        self.steps >= self.sim.max_steps || self.events >= event_limit
    }

    /// Packages the current state as a run report — typically called once
    /// [`MemExecution::runnable`] is empty.
    #[must_use]
    pub fn into_report(self) -> MemRunReport<P, V> {
        MemRunReport {
            outputs: self.outputs,
            crashed: self.crashed,
            steps: self.steps,
            processes: self.processes,
            marker: std::marker::PhantomData,
        }
    }

    /// `false` when the state cannot be soundly digested: k-set oracle
    /// objects carry an opaque RNG whose state the digest cannot observe,
    /// so two executions holding oracles must never be identified.
    #[must_use]
    pub fn supports_digest(&self) -> bool {
        self.oracles.is_empty()
    }

    /// Writes the canonical encoding of everything that can still
    /// influence the run's outcome: bank contents, pending observations,
    /// outputs, the crash set, the step counter, and the protocol states.
    /// Callers must check [`MemExecution::supports_digest`] first.
    pub fn digest_into(&self, w: &mut DigestWriter)
    where
        P: StateDigest,
        P::Output: StateDigest,
        V: StateDigest,
    {
        self.cells.digest(w);
        self.pending.digest(w);
        self.outputs.digest(w);
        self.crashed.digest(w);
        w.write_u64(self.steps);
        w.write_len(self.processes.len());
        for p in &self.processes {
            p.digest(w);
        }
    }
}

impl<V: StateDigest> StateDigest for Observation<V> {
    fn digest(&self, w: &mut DigestWriter) {
        match self {
            Observation::Start => w.write_u8(0),
            Observation::Written => w.write_u8(1),
            Observation::Value(v) => {
                w.write_u8(2);
                v.digest(w);
            }
            Observation::SnapshotView(view) => {
                w.write_u8(3);
                view.digest(w);
            }
            Observation::Chosen(v) => {
                w.write_u8(4);
                v.digest(w);
            }
        }
    }
}

/// A linearizable one-shot k-set-consensus object: every `propose` returns
/// a value already proposed, and at most `k` distinct values are ever
/// returned. Each propose is atomic (it executes within one simulator
/// step), so the object is trivially wait-free.
#[derive(Debug, Clone)]
struct KSetObject {
    k: usize,
    rng: rand::rngs::StdRng,
    proposals: Vec<u64>,
    chosen: Vec<u64>,
}

impl KSetObject {
    fn new(k: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        KSetObject {
            k,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            proposals: Vec::new(),
            chosen: Vec::new(),
        }
    }

    fn propose(&mut self, value: u64) -> u64 {
        use rand::seq::SliceRandom;
        use rand::Rng;
        self.proposals.push(value);
        // Adversarially (but reproducibly) grow the chosen set up to k.
        if self.chosen.len() < self.k && (self.chosen.is_empty() || self.rng.gen_bool(0.4)) {
            let pick = *self
                .proposals
                .choose(&mut self.rng)
                .expect("just pushed a proposal");
            if !self.chosen.contains(&pick) {
                self.chosen.push(pick);
            }
        }
        *self
            .chosen
            .choose(&mut self.rng)
            .expect("chosen is non-empty after the first propose")
    }
}

/// Round-robin scheduler with no crashes: the "synchronous" baseline run.
#[derive(Debug, Clone, Default)]
pub struct FairScheduler {
    cursor: usize,
}

impl FairScheduler {
    /// Creates a fair scheduler.
    #[must_use]
    pub fn new() -> Self {
        FairScheduler { cursor: 0 }
    }
}

impl MemScheduler for FairScheduler {
    fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
        // Next runnable at or after the cursor, cycling.
        let ids: Vec<ProcessId> = runnable.iter().collect();
        let pick = ids
            .iter()
            .copied()
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(ids[0]);
        self.cursor = pick.index() + 1;
        MemEvent::Step(pick)
    }
}

/// Seeded random scheduler with a crash budget: at every point it may, with
/// probability `crash_prob`, crash a random runnable process (while its
/// budget lasts), and otherwise steps a uniformly random runnable process.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: rand::rngs::StdRng,
    crash_budget: usize,
    crash_prob: f64,
}

impl RandomScheduler {
    /// Creates a scheduler with up to `max_crashes` crashes, deterministic
    /// in `seed`.
    #[must_use]
    pub fn new(seed: u64, max_crashes: usize) -> Self {
        use rand::SeedableRng;
        RandomScheduler {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            crash_budget: max_crashes,
            crash_prob: 0.01,
        }
    }

    /// Overrides the per-event crash probability (default 1%).
    #[must_use]
    pub fn crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl MemScheduler for RandomScheduler {
    fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
        use rand::seq::IteratorRandom;
        use rand::Rng;
        let pick = runnable
            .iter()
            .choose(&mut self.rng)
            .expect("simulator guarantees runnable is non-empty");
        if self.crash_budget > 0 && self.rng.gen_bool(self.crash_prob) {
            self.crash_budget -= 1;
            MemEvent::Crash(pick)
        } else {
            MemEvent::Step(pick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Writes its id, then snapshots until it sees at least `quorum`
    /// values, then decides the set it saw.
    #[derive(Debug)]
    struct SnapUntil {
        quorum: usize,
    }

    impl MemProcess<u64> for SnapUntil {
        type Output = Vec<u64>;
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, Vec<u64>> {
            match obs {
                Observation::Start => Action::Write { bank: 0, value: 7 },
                Observation::Written => Action::Snapshot { bank: 0 },
                Observation::SnapshotView(view) => {
                    let seen: Vec<u64> = view.into_iter().flatten().collect();
                    if seen.len() >= self.quorum {
                        Action::Decide(seen)
                    } else {
                        Action::Snapshot { bank: 0 }
                    }
                }
                other => unreachable!("only writes and snapshots: {other:?}"),
            }
        }
    }

    #[test]
    fn fair_run_decides_with_full_views() {
        let size = n(4);
        let procs: Vec<_> = (0..4).map(|_| SnapUntil { quorum: 4 }).collect();
        let report = SharedMemSim::new(size, 1)
            .with_snapshots()
            .run(procs, &mut FairScheduler::new())
            .unwrap();
        assert!(report.all_correct_decided());
        for out in report.outputs {
            assert_eq!(out.unwrap().len(), 4);
        }
    }

    #[test]
    fn snapshot_in_register_system_is_an_error() {
        let size = n(2);
        let procs: Vec<_> = (0..2).map(|_| SnapUntil { quorum: 1 }).collect();
        let err = SharedMemSim::new(size, 1)
            .run(procs, &mut FairScheduler::new())
            .unwrap_err();
        assert!(matches!(err, MemSimError::SnapshotUnavailable { .. }));
    }

    #[test]
    fn crashed_processes_take_no_steps() {
        let size = n(3);

        struct CrashFirst {
            crashed_once: bool,
            inner: FairScheduler,
        }
        impl MemScheduler for CrashFirst {
            fn next_event(&mut self, runnable: IdSet, s: u64) -> MemEvent {
                if !self.crashed_once {
                    self.crashed_once = true;
                    MemEvent::Crash(ProcessId::new(0))
                } else {
                    self.inner.next_event(runnable, s)
                }
            }
        }

        // Quorum 2: survivable with one crash out of three.
        let procs: Vec<_> = (0..3).map(|_| SnapUntil { quorum: 2 }).collect();
        let report = SharedMemSim::new(size, 1)
            .with_snapshots()
            .run(
                procs,
                &mut CrashFirst {
                    crashed_once: false,
                    inner: FairScheduler::new(),
                },
            )
            .unwrap();
        assert_eq!(report.crashed, IdSet::singleton(ProcessId::new(0)));
        assert!(report.outputs[0].is_none());
        assert!(report.outputs[1].is_some());
        assert!(report.outputs[2].is_some());
        assert!(report.all_correct_decided());
    }

    #[test]
    fn starvation_hits_the_step_limit() {
        let size = n(2);

        /// Only ever steps p0, which waits for p1's value forever.
        struct Starver;
        impl MemScheduler for Starver {
            fn next_event(&mut self, _r: IdSet, _s: u64) -> MemEvent {
                MemEvent::Step(ProcessId::new(0))
            }
        }

        let procs: Vec<_> = (0..2).map(|_| SnapUntil { quorum: 2 }).collect();
        let err = SharedMemSim::new(size, 1)
            .with_snapshots()
            .max_steps(500)
            .run(procs, &mut Starver)
            .unwrap_err();
        assert_eq!(err, MemSimError::StepLimitExceeded { max_steps: 500 });
    }

    #[test]
    fn reads_see_only_prior_writes() {
        let size = n(2);

        /// p0 reads p1's cell before p1 writes (fair order: p0 first).
        struct ReadFirst {
            me: ProcessId,
        }
        impl MemProcess<u64> for ReadFirst {
            type Output = Option<u64>;
            fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
                match obs {
                    Observation::Start => {
                        if self.me.index() == 0 {
                            Action::Read {
                                bank: 0,
                                owner: ProcessId::new(1),
                            }
                        } else {
                            Action::Write { bank: 0, value: 42 }
                        }
                    }
                    Observation::Value(v) => Action::Decide(v),
                    Observation::Written => Action::Read {
                        bank: 0,
                        owner: ProcessId::new(1),
                    },
                    other => unreachable!("{other:?}"),
                }
            }
        }

        let procs: Vec<_> = size.processes().map(|p| ReadFirst { me: p }).collect();
        let report = SharedMemSim::new(size, 1)
            .run(procs, &mut FairScheduler::new())
            .unwrap();
        // Fair order p0, p1, p0, p1: p0's read precedes p1's write.
        assert_eq!(report.outputs[0], Some(None));
        // p1 reads its own cell after writing it.
        assert_eq!(report.outputs[1], Some(Some(42)));
    }

    #[test]
    fn random_scheduler_respects_crash_budget() {
        let size = n(5);
        for seed in 0..10u64 {
            let procs: Vec<_> = (0..5).map(|_| SnapUntil { quorum: 3 }).collect();
            let mut sched = RandomScheduler::new(seed, 2).crash_prob(0.05);
            let report = SharedMemSim::new(size, 1)
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            assert!(report.crashed.len() <= 2, "crash budget exceeded");
            assert!(report.all_correct_decided());
        }
    }

    #[test]
    fn bank_bounds_are_checked() {
        let size = n(1);
        #[derive(Debug)]
        struct BadBank;
        impl MemProcess<u64> for BadBank {
            type Output = ();
            fn step(&mut self, _obs: Observation<u64>) -> Action<u64, ()> {
                Action::Write { bank: 3, value: 0 }
            }
        }
        let err = SharedMemSim::new(size, 2)
            .run(vec![BadBank], &mut FairScheduler::new())
            .unwrap_err();
        assert!(matches!(err, MemSimError::BankOutOfRange { bank: 3, .. }));
    }

    #[test]
    fn wrong_process_count_is_reported() {
        let size = n(3);
        let procs: Vec<SnapUntil> = vec![];
        let err = SharedMemSim::new(size, 1)
            .run(procs, &mut FairScheduler::new())
            .unwrap_err();
        assert!(matches!(err, MemSimError::WrongProcessCount { .. }));
    }
}
