//! Canonical state digests — the memoization seam of the parallel explorer.
//!
//! Two interleavings of a protocol frequently *converge*: writes to
//! distinct SWMR cells commute, so many schedule prefixes reach the same
//! simulator state. The parallel explorer ([`crate::explore_par`])
//! deduplicates converged states, which requires a canonical, hashable
//! encoding of "everything that can still influence the run's outcome":
//! bank contents, per-process protocol state, pending observations,
//! recorded outputs, the crash set, and the step counter.
//!
//! A type opts into this by implementing [`StateDigest`]: it feeds a
//! canonical byte encoding of itself into a [`DigestWriter`]. The writer
//! produces a [`StateKey`] carrying both a cheap 64-bit FNV-1a hash *and*
//! the full byte encoding. [`DigestMemo`] — the dedup table — buckets by
//! the weak hash but always confirms with a full byte comparison, so a
//! hash collision between distinct states can never merge them (see the
//! `colliding_states_are_not_merged` test). Soundness therefore rests only
//! on the encoding being *injective enough*: two states with equal
//! encodings must behave identically under every future schedule. The
//! provided implementations tag enum discriminants and length-prefix
//! variable-size collections to rule out ambiguous concatenations.

use rrfd_core::{IdSet, ProcessId};
use std::collections::HashMap;

/// Accumulates the canonical byte encoding of a state.
#[derive(Debug, Default)]
pub struct DigestWriter {
    bytes: Vec<u8>,
}

impl DigestWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        DigestWriter::default()
    }

    /// Appends raw bytes. Callers encoding variable-length data must
    /// length-prefix it (see [`DigestWriter::write_len`]) to keep the
    /// overall encoding unambiguous.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends one byte — typically an enum discriminant tag.
    pub fn write_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a `u64` in little-endian order.
    pub fn write_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` in little-endian order.
    pub fn write_u128(&mut self, v: u128) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length (prefix it *before* the elements).
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Finalizes into a [`StateKey`]: weak hash plus full encoding.
    #[must_use]
    pub fn finish(self) -> StateKey {
        let hash = fnv1a(&self.bytes);
        StateKey {
            hash,
            bytes: self.bytes.into_boxed_slice(),
        }
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A canonical state encoding: a weak 64-bit hash for bucketing and the
/// full byte string for the equality confirm path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateKey {
    hash: u64,
    bytes: Box<[u8]>,
}

impl StateKey {
    /// The weak bucketing hash.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The full canonical encoding.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// The dedup table: keys bucketed by weak hash, membership always
/// confirmed by comparing the full encodings. Distinct states that happen
/// to collide on the 64-bit hash land in the same bucket but are *not*
/// merged.
///
/// Every retained entry keeps its full `Box<[u8]>` encoding, so an
/// unbounded memo on a long exploration grows without limit. A memo built
/// with [`DigestMemo::bounded`] therefore enforces an entry and a byte
/// cap; once either would be exceeded the memo *stops inserting* and
/// marks itself [`DigestMemo::saturated`]. The degrade mode is sound by
/// construction: a fresh state that cannot be retained is still reported
/// fresh (explored, possibly more than once later) — fewer prunes, never
/// a wrong prune.
#[derive(Debug)]
pub struct DigestMemo {
    buckets: HashMap<u64, Vec<Box<[u8]>>>,
    entries: usize,
    bytes: usize,
    max_entries: usize,
    max_bytes: usize,
    saturated: bool,
}

impl Default for DigestMemo {
    fn default() -> Self {
        DigestMemo::new()
    }
}

impl DigestMemo {
    /// An empty, unbounded memo.
    #[must_use]
    pub fn new() -> Self {
        DigestMemo::bounded(usize::MAX, usize::MAX)
    }

    /// An empty memo that retains at most `max_entries` states totalling
    /// at most `max_bytes` of encoding payload.
    #[must_use]
    pub fn bounded(max_entries: usize, max_bytes: usize) -> Self {
        DigestMemo {
            buckets: HashMap::new(),
            entries: 0,
            bytes: 0,
            max_entries,
            max_bytes,
            saturated: false,
        }
    }

    /// Inserts `key`; returns `true` when the state is fresh (not seen
    /// before) and `false` when an *identical* encoding was already
    /// present. A fresh state past the cap is reported fresh but not
    /// retained (see the type docs for why that degrade mode is sound).
    pub fn insert(&mut self, key: StateKey) -> bool {
        self.insert_raw(key.hash, key.bytes)
    }

    /// Raw-entry insert used by the collision soundness tests: callers can
    /// force two different byte strings under the same weak hash and
    /// observe that both are kept.
    pub fn insert_raw(&mut self, hash: u64, bytes: Box<[u8]>) -> bool {
        let bucket = self.buckets.entry(hash).or_default();
        if bucket.iter().any(|seen| **seen == *bytes) {
            return false;
        }
        if self.entries >= self.max_entries
            || self.bytes.saturating_add(bytes.len()) > self.max_bytes
        {
            self.saturated = true;
            return true;
        }
        self.bytes += bytes.len();
        bucket.push(bytes);
        self.entries += 1;
        true
    }

    /// Number of distinct states retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` when nothing was inserted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Total encoding bytes retained across all entries.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `true` once an insert was refused by the entry or byte cap.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.saturated
    }
}

/// Feeds a canonical byte encoding of `self` into a [`DigestWriter`].
///
/// Contract: if two values of the same type produce equal byte streams,
/// they must be observationally equivalent — every future the simulator
/// can produce from one, it can produce from the other. Implementations
/// for sum types must write a discriminant tag; implementations for
/// variable-size collections must length-prefix.
pub trait StateDigest {
    /// Writes the canonical encoding of `self`.
    fn digest(&self, w: &mut DigestWriter);
}

macro_rules! digest_via_u64 {
    ($($ty:ty),*) => {$(
        impl StateDigest for $ty {
            fn digest(&self, w: &mut DigestWriter) {
                w.write_u64(*self as u64);
            }
        }
    )*};
}

digest_via_u64!(u8, u16, u32, u64, usize);

impl StateDigest for i64 {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_u64(*self as u64);
    }
}

impl StateDigest for bool {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_u8(u8::from(*self));
    }
}

impl StateDigest for () {
    fn digest(&self, _w: &mut DigestWriter) {}
}

impl StateDigest for ProcessId {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_u64(self.index() as u64);
    }
}

impl StateDigest for IdSet {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_len(self.len());
        for p in self.iter() {
            p.digest(w);
        }
    }
}

impl<T: StateDigest> StateDigest for Option<T> {
    fn digest(&self, w: &mut DigestWriter) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.digest(w);
            }
        }
    }
}

impl<T: StateDigest> StateDigest for [T] {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_len(self.len());
        for item in self {
            item.digest(w);
        }
    }
}

impl<T: StateDigest> StateDigest for Vec<T> {
    fn digest(&self, w: &mut DigestWriter) {
        self.as_slice().digest(w);
    }
}

impl<T: StateDigest> StateDigest for std::collections::VecDeque<T> {
    fn digest(&self, w: &mut DigestWriter) {
        w.write_len(self.len());
        for item in self {
            item.digest(w);
        }
    }
}

impl<A: StateDigest, B: StateDigest> StateDigest for (A, B) {
    fn digest(&self, w: &mut DigestWriter) {
        self.0.digest(w);
        self.1.digest(w);
    }
}

impl<A: StateDigest, B: StateDigest, C: StateDigest> StateDigest for (A, B, C) {
    fn digest(&self, w: &mut DigestWriter) {
        self.0.digest(w);
        self.1.digest(w);
        self.2.digest(w);
    }
}

impl<T: StateDigest + ?Sized> StateDigest for &T {
    fn digest(&self, w: &mut DigestWriter) {
        (*self).digest(w);
    }
}

/// Digests through the pointer: two executions whose inboxes hold the same
/// payload — whether Arc-shared or independently owned — encode
/// identically, so the zero-copy message plane cannot perturb memoization.
impl<T: StateDigest + ?Sized> StateDigest for std::sync::Arc<T> {
    fn digest(&self, w: &mut DigestWriter) {
        (**self).digest(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of<T: StateDigest>(value: &T) -> StateKey {
        let mut w = DigestWriter::new();
        value.digest(&mut w);
        w.finish()
    }

    #[test]
    fn equal_values_share_a_key_distinct_values_do_not() {
        let a = key_of(&vec![Some(1u64), None, Some(3)]);
        let b = key_of(&vec![Some(1u64), None, Some(3)]);
        let c = key_of(&vec![Some(1u64), Some(3), None]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_disambiguates_adjacent_collections() {
        // [[1],[2]] vs [[1,2],[]] — without length prefixes these would
        // concatenate to the same stream.
        let a = key_of(&vec![vec![1u64], vec![2u64]]);
        let b = key_of(&vec![vec![1u64, 2u64], Vec::<u64>::new()]);
        assert_ne!(a, b);
    }

    #[test]
    fn memo_dedups_identical_keys() {
        let mut memo = DigestMemo::new();
        assert!(memo.insert(key_of(&7u64)));
        assert!(!memo.insert(key_of(&7u64)));
        assert!(memo.insert(key_of(&8u64)));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn colliding_states_are_not_merged() {
        // Two *different* encodings forced under one weak hash: the memo
        // must keep both (full-equality confirm path), and re-inserting
        // either must then dedup.
        let mut memo = DigestMemo::new();
        let first: Box<[u8]> = vec![1, 2, 3].into_boxed_slice();
        let second: Box<[u8]> = vec![4, 5, 6].into_boxed_slice();
        assert!(memo.insert_raw(0xDEAD_BEEF, first.clone()));
        assert!(
            memo.insert_raw(0xDEAD_BEEF, second.clone()),
            "distinct state under a colliding hash must not be merged"
        );
        assert_eq!(memo.len(), 2);
        assert!(!memo.insert_raw(0xDEAD_BEEF, first));
        assert!(!memo.insert_raw(0xDEAD_BEEF, second));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn entry_cap_degrades_to_fresh_not_wrong() {
        let mut memo = DigestMemo::bounded(2, usize::MAX);
        assert!(memo.insert(key_of(&1u64)));
        assert!(memo.insert(key_of(&2u64)));
        assert!(!memo.saturated());
        // Third distinct state: reported fresh (explored) but not retained.
        assert!(memo.insert(key_of(&3u64)));
        assert!(memo.saturated());
        assert_eq!(memo.len(), 2);
        // Re-encountering the unretained state stays "fresh" — a repeat
        // visit, never a wrong prune.
        assert!(memo.insert(key_of(&3u64)));
        // Retained states still dedup after saturation.
        assert!(!memo.insert(key_of(&1u64)));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn byte_cap_degrades_to_fresh_not_wrong() {
        // Each u64 key encodes to 8 bytes; cap at 12 retains exactly one.
        let mut memo = DigestMemo::bounded(usize::MAX, 12);
        assert!(memo.insert(key_of(&1u64)));
        assert_eq!(memo.bytes(), 8);
        assert!(!memo.saturated());
        assert!(memo.insert(key_of(&2u64)));
        assert!(memo.saturated());
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.bytes(), 8);
        assert!(!memo.insert(key_of(&1u64)), "retained entry still dedups");
    }

    #[test]
    fn unbounded_memo_never_saturates() {
        let mut memo = DigestMemo::new();
        for i in 0..1000u64 {
            assert!(memo.insert(key_of(&i)));
        }
        assert_eq!(memo.len(), 1000);
        assert_eq!(memo.bytes(), 8000);
        assert!(!memo.saturated());
    }

    #[test]
    fn idset_and_pid_digests_are_canonical() {
        let mut s1 = IdSet::empty();
        s1.insert(ProcessId::new(2));
        s1.insert(ProcessId::new(0));
        let mut s2 = IdSet::empty();
        s2.insert(ProcessId::new(0));
        s2.insert(ProcessId::new(2));
        assert_eq!(key_of(&s1), key_of(&s2));
        assert_ne!(key_of(&s1), key_of(&IdSet::empty()));
    }
}
