//! Exhaustive schedule exploration for the shared-memory simulator.
//!
//! For small systems the *entire* tree of interleavings is enumerable:
//! [`explore_schedules`] performs a depth-first walk over every scheduler
//! decision sequence (which runnable process steps next, crash-free),
//! running the protocol to completion on each path and handing every
//! outcome to a checker. This turns sampled "holds under 50 seeds" tests
//! into genuine proofs-by-enumeration for two- and three-process
//! instances — the adopt-commit and immediate-snapshot test-suites use it.
//!
//! Every decision sequence visited is also recorded as a
//! [`ScheduleTrace`]; when a check fails, the walker hands back a
//! [`Counterexample`] whose serialized schedule can be re-driven verbatim
//! through [`crate::trace::ScheduleReplay`] — no need to re-enumerate the
//! tree to get back to the failing run.

use crate::shared_mem::{MemEvent, MemProcess, MemRunReport, MemScheduler, SharedMemSim};
use crate::trace::{Recording, SchedEvent, ScheduleTrace};
use rrfd_core::IdSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scheduler that replays a fixed choice prefix (indices into the sorted
/// runnable set) and picks the first runnable process beyond it, recording
/// the branching factor at every decision.
struct ReplayScheduler<'a> {
    prefix: &'a [usize],
    cursor: usize,
    branching: Vec<usize>,
}

impl MemScheduler for ReplayScheduler<'_> {
    fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
        let ids: Vec<_> = runnable.iter().collect();
        self.branching.push(ids.len());
        let choice = self.prefix.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        MemEvent::Step(ids[choice.min(ids.len() - 1)])
    }
}

/// Search-effort totals from an exhaustive exploration. Previously the
/// success path reported only a schedule count and discarded the per-run
/// decision bookkeeping the walker had already paid for; surfacing it
/// makes "how hard was this proof-by-enumeration" a measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Complete schedules enumerated.
    pub schedules: usize,
    /// Decision points visited, summed over every schedule (shared
    /// prefixes are re-visited and re-counted, mirroring the work done).
    pub decision_points: u64,
    /// The deepest decision sequence any schedule reached.
    pub max_depth: usize,
    /// Subtrees skipped because their root state had already been visited
    /// (converged-state memoization; `0` for the sequential explorers).
    pub pruned_by_hash: u64,
    /// Branches skipped by process-id symmetry reduction (`0` unless the
    /// parallel explorer runs with symmetry enabled).
    pub pruned_by_symmetry: u64,
    /// Worker threads the search ran on (`1` for the sequential
    /// explorers).
    pub workers: usize,
    /// Independent subtree jobs the schedule tree was split into (`0` for
    /// the sequential explorers — they never split).
    pub wall_splits: usize,
    /// Distinct states the converged-state memos retained, summed over
    /// jobs (`0` for the sequential explorers and with pruning off).
    pub memo_entries: usize,
    /// Encoding bytes the memos retained, summed over jobs.
    pub memo_bytes: usize,
    /// `true` when any job's memo hit its entry or byte cap and degraded
    /// to not inserting (fewer prunes, never a wrong prune).
    pub memo_saturated: bool,
}

impl ExploreStats {
    /// Combines the totals of two disjoint parts of one search. The
    /// operation is associative and commutative (sums and maxima), so
    /// per-worker stats can be folded in any grouping; the parallel
    /// explorer folds them in fixed job order to keep the result
    /// byte-identical across runs.
    #[must_use]
    pub fn merged(self, other: ExploreStats) -> ExploreStats {
        ExploreStats {
            schedules: self.schedules + other.schedules,
            decision_points: self.decision_points + other.decision_points,
            max_depth: self.max_depth.max(other.max_depth),
            pruned_by_hash: self.pruned_by_hash + other.pruned_by_hash,
            pruned_by_symmetry: self.pruned_by_symmetry + other.pruned_by_symmetry,
            workers: self.workers.max(other.workers),
            wall_splits: self.wall_splits + other.wall_splits,
            memo_entries: self.memo_entries + other.memo_entries,
            memo_bytes: self.memo_bytes + other.memo_bytes,
            memo_saturated: self.memo_saturated || other.memo_saturated,
        }
    }

    /// Records the totals under the `rrfd_explore_*` metric names.
    pub fn record(&self, obs: &rrfd_obs::Obs) {
        use rrfd_obs::{names, Labels};
        obs.add(
            names::EXPLORE_SCHEDULES,
            Labels::GLOBAL,
            self.schedules as u64,
        );
        obs.add(
            names::EXPLORE_DECISION_POINTS,
            Labels::GLOBAL,
            self.decision_points,
        );
        obs.gauge(
            names::EXPLORE_MAX_DEPTH,
            Labels::GLOBAL,
            i64::try_from(self.max_depth).unwrap_or(i64::MAX),
        );
        obs.add(
            names::EXPLORE_PRUNED_HASH,
            Labels::GLOBAL,
            self.pruned_by_hash,
        );
        obs.add(
            names::EXPLORE_PRUNED_SYMMETRY,
            Labels::GLOBAL,
            self.pruned_by_symmetry,
        );
        obs.gauge(
            names::EXPLORE_WORKERS,
            Labels::GLOBAL,
            i64::try_from(self.workers).unwrap_or(i64::MAX),
        );
        obs.add(
            names::EXPLORE_SPLITS,
            Labels::GLOBAL,
            self.wall_splits as u64,
        );
        obs.gauge(
            names::EXPLORE_MEMO_ENTRIES,
            Labels::GLOBAL,
            i64::try_from(self.memo_entries).unwrap_or(i64::MAX),
        );
        obs.gauge(
            names::EXPLORE_MEMO_BYTES,
            Labels::GLOBAL,
            i64::try_from(self.memo_bytes).unwrap_or(i64::MAX),
        );
        obs.gauge(
            names::EXPLORE_MEMO_SATURATED,
            Labels::GLOBAL,
            i64::from(self.memo_saturated),
        );
    }
}

/// A failing schedule found during exploration: the walker's raw decision
/// indices, the concrete event sequence they produced (replayable through
/// [`crate::trace::ScheduleReplay`]), and the checker's complaint.
#[derive(Debug, Clone)]
pub struct Counterexample<E> {
    /// Decision indices into each choice point's option list.
    pub choices: Vec<usize>,
    /// The concrete schedule, serializable and replayable.
    pub schedule: ScheduleTrace<E>,
    /// What the checker reported.
    pub message: String,
    /// Search effort up to and *including* the failing schedule. Early
    /// exits previously discarded these totals, under-reporting
    /// `max_depth`; the failing run's partial depth is now folded in.
    pub stats: ExploreStats,
}

impl<E: SchedEvent> fmt::Display for Counterexample<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule check failed: {}", self.message)?;
        writeln!(f, "scheduler choices: {:?}", self.choices)?;
        write!(f, "replayable schedule:\n{}", self.schedule)
    }
}

/// Converts a caught panic payload into a displayable message.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Enumerates every schedule of `sim` over fresh processes from `make`,
/// invoking `check` on each completed run. Returns the search-effort
/// totals ([`ExploreStats`]) of the completed walk, or the first failing
/// schedule as a replayable [`Counterexample`].
///
/// The walk is exhaustive: every sequence of "which runnable process steps
/// next" choices is visited exactly once. Use only on small instances —
/// the tree is exponential in the total step count.
///
/// # Errors
///
/// The first schedule whose `check` returns `Err` stops the walk and is
/// returned as a [`Counterexample`].
///
/// # Panics
///
/// Panics if the exploration exceeds `max_runs` schedules (a guard against
/// accidentally exponential instances), or propagates panics from `check`.
pub fn explore_schedules_checked<V, P, F, G>(
    sim: &SharedMemSim,
    make: G,
    mut check: F,
    max_runs: usize,
) -> Result<ExploreStats, Box<Counterexample<MemEvent>>>
where
    V: Clone,
    P: MemProcess<V>,
    G: Fn() -> Vec<P>,
    F: FnMut(&MemRunReport<P, V>) -> Result<(), String>,
{
    let mut prefix: Vec<usize> = Vec::new();
    let mut stats = ExploreStats {
        workers: 1,
        ..ExploreStats::default()
    };
    let mut runs = 0usize;
    loop {
        let mut scheduler = Recording::new(ReplayScheduler {
            prefix: &prefix,
            cursor: 0,
            branching: Vec::new(),
        });
        let report = sim
            .run(make(), &mut scheduler)
            .expect("exploration requires terminating, crash-free protocols");
        runs += 1;
        assert!(
            runs <= max_runs,
            "schedule exploration exceeded {max_runs} runs"
        );
        let (inner, schedule) = scheduler.into_parts();
        let branching = inner.branching;
        stats.schedules = runs;
        stats.decision_points += branching.len() as u64;
        stats.max_depth = stats.max_depth.max(branching.len());
        let full: Vec<usize> = branching
            .iter()
            .enumerate()
            .map(|(i, _)| prefix.get(i).copied().unwrap_or(0))
            .collect();

        if let Err(message) = check(&report) {
            return Err(Box::new(Counterexample {
                choices: full,
                schedule,
                message,
                stats,
            }));
        }

        // Advance the prefix: find the deepest decision that can still be
        // incremented; truncate everything after it.
        let mut full = full;
        let Some(bump) = (0..full.len()).rev().find(|&i| full[i] + 1 < branching[i]) else {
            return Ok(stats);
        };
        full[bump] += 1;
        full.truncate(bump + 1);
        prefix = full;
    }
}

/// Panicking front-end to [`explore_schedules_checked`]: `check` signals
/// failure by panicking (e.g. `assert!`), and the panic is re-raised with
/// the failing schedule appended, so a test log always carries a
/// replayable trace. Returns the number of schedules explored.
///
/// # Panics
///
/// Panics if the exploration exceeds `max_runs` schedules, or re-raises
/// `check` panics annotated with the [`Counterexample`].
#[deprecated(
    since = "0.2.0",
    note = "panics instead of returning the counterexample; use \
            `explore_schedules_checked`, which yields a replayable \
            `Counterexample` as a typed error"
)]
pub fn explore_schedules<V, P, F, G>(
    sim: &SharedMemSim,
    make: G,
    mut check: F,
    max_runs: usize,
) -> usize
where
    V: Clone,
    P: MemProcess<V>,
    G: Fn() -> Vec<P>,
    F: FnMut(&MemRunReport<P, V>),
{
    match explore_schedules_checked(
        sim,
        make,
        |report| catch_unwind(AssertUnwindSafe(|| check(report))).map_err(payload_message),
        max_runs,
    ) {
        Ok(stats) => stats.schedules,
        Err(cex) => panic!("{cex}"),
    }
}

/// Exhaustive exploration for the semi-synchronous simulator, including
/// crash choices: at every decision point the walker tries stepping each
/// live process and, while `crash_budget` allows, crashing each live
/// process.
pub mod semi_sync {
    use super::{catch_unwind, payload_message, AssertUnwindSafe, Counterexample, ExploreStats};
    use crate::semi_sync::{
        SemiSyncEvent, SemiSyncProcess, SemiSyncReport, SemiSyncScheduler, SemiSyncSim,
    };
    use crate::trace::Recording;
    use rrfd_core::IdSet;

    struct Replay<'a> {
        prefix: &'a [usize],
        cursor: usize,
        branching: Vec<usize>,
        crash_budget: usize,
    }

    impl Replay<'_> {
        /// Options at a decision point: step each live process, then (if
        /// budget remains and more than one process is live) crash each.
        fn options(&self, live: IdSet) -> Vec<SemiSyncEvent> {
            let mut opts: Vec<SemiSyncEvent> = live.iter().map(SemiSyncEvent::Step).collect();
            if self.crash_budget > 0 && live.len() > 1 {
                opts.extend(live.iter().map(SemiSyncEvent::Crash));
            }
            opts
        }
    }

    impl SemiSyncScheduler for Replay<'_> {
        fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
            let opts = self.options(live);
            self.branching.push(opts.len());
            let choice = self.prefix.get(self.cursor).copied().unwrap_or(0);
            self.cursor += 1;
            let event = opts[choice.min(opts.len() - 1)];
            if let SemiSyncEvent::Crash(_) = event {
                self.crash_budget -= 1;
            }
            event
        }
    }

    /// Enumerates every semi-synchronous schedule (with up to
    /// `max_crashes` crashes at adversarially chosen instants), checking
    /// each completed run. Returns the search-effort totals
    /// ([`ExploreStats`]) of the completed walk, or the first failing
    /// schedule as a replayable [`Counterexample`].
    ///
    /// # Errors
    ///
    /// The first schedule whose `check` returns `Err` stops the walk and
    /// is returned as a [`Counterexample`].
    ///
    /// # Panics
    ///
    /// Panics past `max_runs` schedules.
    pub fn explore_semi_sync_checked<P, F, G>(
        sim: &SemiSyncSim,
        max_crashes: usize,
        make: G,
        mut check: F,
        max_runs: usize,
    ) -> Result<ExploreStats, Box<Counterexample<SemiSyncEvent>>>
    where
        P: SemiSyncProcess,
        G: Fn() -> Vec<P>,
        F: FnMut(&SemiSyncReport<P>) -> Result<(), String>,
    {
        let mut prefix: Vec<usize> = Vec::new();
        let mut stats = ExploreStats {
            workers: 1,
            ..ExploreStats::default()
        };
        let mut runs = 0usize;
        loop {
            let mut scheduler = Recording::new(Replay {
                prefix: &prefix,
                cursor: 0,
                branching: Vec::new(),
                crash_budget: max_crashes,
            });
            let report = sim
                .run(make(), &mut scheduler)
                .expect("exploration requires terminating protocols");
            runs += 1;
            assert!(
                runs <= max_runs,
                "schedule exploration exceeded {max_runs} runs"
            );
            let (inner, schedule) = scheduler.into_parts();
            let branching = inner.branching;
            stats.schedules = runs;
            stats.decision_points += branching.len() as u64;
            stats.max_depth = stats.max_depth.max(branching.len());
            let full: Vec<usize> = branching
                .iter()
                .enumerate()
                .map(|(i, _)| prefix.get(i).copied().unwrap_or(0))
                .collect();

            if let Err(message) = check(&report) {
                return Err(Box::new(Counterexample {
                    choices: full,
                    schedule,
                    message,
                    stats,
                }));
            }

            let mut full = full;
            let Some(bump) = (0..full.len()).rev().find(|&i| full[i] + 1 < branching[i]) else {
                return Ok(stats);
            };
            full[bump] += 1;
            full.truncate(bump + 1);
            prefix = full;
        }
    }

    /// Panicking front-end to [`explore_semi_sync_checked`]: `check`
    /// panics on failure and the panic is re-raised with the failing
    /// schedule appended. Returns the number of schedules explored.
    ///
    /// # Panics
    ///
    /// Panics past `max_runs` schedules, or re-raises `check` panics
    /// annotated with the [`Counterexample`].
    #[deprecated(
        since = "0.2.0",
        note = "panics instead of returning the counterexample; use \
                `explore_semi_sync_checked`, which yields a replayable \
                `Counterexample` as a typed error"
    )]
    pub fn explore_semi_sync<P, F, G>(
        sim: &SemiSyncSim,
        max_crashes: usize,
        make: G,
        mut check: F,
        max_runs: usize,
    ) -> usize
    where
        P: SemiSyncProcess,
        G: Fn() -> Vec<P>,
        F: FnMut(&SemiSyncReport<P>),
    {
        match explore_semi_sync_checked(
            sim,
            max_crashes,
            make,
            |report| catch_unwind(AssertUnwindSafe(|| check(report))).map_err(payload_message),
            max_runs,
        ) {
            Ok(stats) => stats.schedules,
            Err(cex) => panic!("{cex}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_mem::{Action, Observation};
    use rrfd_core::{ProcessId, SystemSize};

    /// Writes once and decides what it read from the other process's cell.
    #[derive(Debug)]
    struct WriteRead {
        me: ProcessId,
    }

    impl MemProcess<u64> for WriteRead {
        type Output = Option<u64>;
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
            match obs {
                Observation::Start => Action::Write {
                    bank: 0,
                    value: self.me.index() as u64 + 1,
                },
                Observation::Written => Action::Read {
                    bank: 0,
                    owner: ProcessId::new(1 - self.me.index()),
                },
                Observation::Value(v) => Action::Decide(v),
                other => unreachable!("{other:?}"),
            }
        }
    }

    fn make_pair() -> Vec<WriteRead> {
        vec![
            WriteRead {
                me: ProcessId::new(0),
            },
            WriteRead {
                me: ProcessId::new(1),
            },
        ]
    }

    #[test]
    #[allow(deprecated)] // the panicking front-end is what's under test
    fn enumerates_all_interleavings_of_two_three_step_processes() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let mut outcomes = std::collections::BTreeSet::new();
        let runs = explore_schedules(
            &sim,
            make_pair,
            |report| {
                outcomes.insert((report.outputs[0].unwrap(), report.outputs[1].unwrap()));
            },
            1000,
        );
        // Two processes, three steps each: C(6,3) = 20 interleavings.
        assert_eq!(runs, 20);
        // Classic register analysis: at least one process must see the
        // other's write; both-None is unreachable.
        assert!(!outcomes.contains(&(None, None)));
        assert!(outcomes.contains(&(Some(2), Some(1))));
        // One-sided misses are possible in either direction.
        assert!(outcomes.contains(&(None, Some(1))));
        assert!(outcomes.contains(&(Some(2), None)));
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    #[allow(deprecated)] // the panicking front-end is what's under test
    fn single_process_has_one_schedule() {
        let n = SystemSize::new(1).unwrap();
        let sim = SharedMemSim::new(n, 1);

        #[derive(Debug)]
        struct Solo;
        impl MemProcess<u64> for Solo {
            type Output = ();
            fn step(&mut self, obs: Observation<u64>) -> Action<u64, ()> {
                match obs {
                    Observation::Start => Action::Write { bank: 0, value: 1 },
                    Observation::Written => Action::Decide(()),
                    other => unreachable!("{other:?}"),
                }
            }
        }

        let runs = explore_schedules(&sim, || vec![Solo], |_| {}, 10);
        assert_eq!(runs, 1);
    }

    #[test]
    #[should_panic(expected = "exceeded 5 runs")]
    #[allow(deprecated)] // the panicking front-end is what's under test
    fn run_guard_fires() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let _ = explore_schedules(&sim, make_pair, |_| {}, 5);
    }

    #[test]
    fn counterexample_is_replayable() {
        use crate::trace::ScheduleReplay;

        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        // "Nobody misses the other's write" is false; the walker must find
        // a schedule where p0 reads before p1 writes (or vice versa).
        let cex = explore_schedules_checked(
            &sim,
            make_pair,
            |report| {
                if report.outputs.iter().any(|o| o == &Some(None)) {
                    Err("someone missed the other's write".to_owned())
                } else {
                    Ok(())
                }
            },
            1000,
        )
        .unwrap_err();

        // The serialized schedule replays to the same failing outcome.
        let text = cex.schedule.to_string();
        let reparsed: crate::trace::ScheduleTrace<MemEvent> = text.parse().unwrap();
        let mut replay = ScheduleReplay::from_trace(&reparsed);
        let report = sim.run(make_pair(), &mut replay).unwrap();
        assert!(report.outputs.iter().any(|o| o == &Some(None)));

        // And the Display form carries both the message and the schedule.
        let shown = cex.to_string();
        assert!(
            shown.contains("someone missed the other's write"),
            "{shown}"
        );
        assert!(shown.contains("rrfd-sched v1"), "{shown}");
    }

    #[test]
    #[allow(deprecated)] // the panicking front-end is what's under test
    fn failing_check_panics_with_the_schedule_attached() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            explore_schedules(
                &sim,
                make_pair,
                |report| {
                    assert!(
                        !report.outputs.iter().any(|o| o == &Some(None)),
                        "someone missed the other's write"
                    );
                },
                1000,
            )
        }))
        .unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a formatted message");
        assert!(
            message.contains("someone missed the other's write"),
            "{message}"
        );
        assert!(message.contains("replayable schedule:"), "{message}");
        assert!(message.contains("rrfd-sched v1"), "{message}");
    }

    #[test]
    fn counterexample_folds_the_failing_runs_partial_depth() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        // The very first enumerated schedule (all-first choices: p0 runs
        // to completion, then p1) already violates "nobody misses the
        // other's write" — p0 reads p1's still-unwritten cell. The early
        // exit used to discard the failing run's bookkeeping entirely,
        // leaving `max_depth` (and everything else) at zero.
        let cex = explore_schedules_checked(
            &sim,
            make_pair,
            |report| {
                if report.outputs.iter().any(|o| o == &Some(None)) {
                    Err("someone missed the other's write".to_owned())
                } else {
                    Ok(())
                }
            },
            1000,
        )
        .unwrap_err();
        // One schedule of six decisions (three steps per process; p1's
        // tail decisions are forced but still decision points).
        assert_eq!(cex.stats.schedules, 1);
        assert_eq!(cex.stats.decision_points, 6);
        assert_eq!(cex.stats.max_depth, 6, "partial depth must be folded in");
        assert_eq!(cex.stats.workers, 1);
        assert_eq!(cex.stats.max_depth, cex.choices.len());
    }

    #[test]
    fn semi_sync_counterexample_is_replayable() {
        use crate::semi_sync::{SemiSyncProcess, SemiSyncSim};
        use crate::trace::ScheduleReplay;
        use rrfd_core::Control;

        /// Broadcasts once, decides after two steps on how many distinct
        /// senders it heard.
        #[derive(Debug)]
        struct Listen {
            steps: u64,
            heard: rrfd_core::IdSet,
            sent: bool,
        }
        impl SemiSyncProcess for Listen {
            type Msg = ();
            type Output = usize;
            fn step(
                &mut self,
                received: &[(ProcessId, std::sync::Arc<()>)],
            ) -> (Option<()>, Control<usize>) {
                self.steps += 1;
                for &(from, _) in received {
                    self.heard.insert(from);
                }
                let msg = (!self.sent).then(|| self.sent = true);
                if self.steps >= 2 {
                    (msg, Control::Decide(self.heard.len()))
                } else {
                    (msg, Control::Continue)
                }
            }
        }

        let n = SystemSize::new(2).unwrap();
        let sim = SemiSyncSim::new(n);
        let make = || {
            (0..2)
                .map(|_| Listen {
                    steps: 0,
                    heard: rrfd_core::IdSet::empty(),
                    sent: false,
                })
                .collect::<Vec<_>>()
        };
        // With one allowed crash, "everyone hears both processes" fails.
        let cex = semi_sync::explore_semi_sync_checked(
            &sim,
            1,
            make,
            |report| {
                if report.outputs.iter().flatten().any(|(heard, _)| *heard < 2) {
                    Err("someone heard fewer than two processes".to_owned())
                } else {
                    Ok(())
                }
            },
            10_000,
        )
        .unwrap_err();

        let mut replay = ScheduleReplay::from_trace(&cex.schedule);
        let report = sim.run(make(), &mut replay).unwrap();
        assert!(report.outputs.iter().flatten().any(|(heard, _)| *heard < 2));
    }
}
