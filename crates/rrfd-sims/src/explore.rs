//! Exhaustive schedule exploration for the shared-memory simulator.
//!
//! For small systems the *entire* tree of interleavings is enumerable:
//! [`explore_schedules`] performs a depth-first walk over every scheduler
//! decision sequence (which runnable process steps next, crash-free),
//! running the protocol to completion on each path and handing every
//! outcome to a checker. This turns sampled "holds under 50 seeds" tests
//! into genuine proofs-by-enumeration for two- and three-process
//! instances — the adopt-commit and immediate-snapshot test-suites use it.

use crate::shared_mem::{MemEvent, MemProcess, MemRunReport, MemScheduler, SharedMemSim};
use rrfd_core::IdSet;

/// A scheduler that replays a fixed choice prefix (indices into the sorted
/// runnable set) and picks the first runnable process beyond it, recording
/// the branching factor at every decision.
struct ReplayScheduler<'a> {
    prefix: &'a [usize],
    cursor: usize,
    branching: Vec<usize>,
}

impl MemScheduler for ReplayScheduler<'_> {
    fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
        let ids: Vec<_> = runnable.iter().collect();
        self.branching.push(ids.len());
        let choice = self.prefix.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        MemEvent::Step(ids[choice.min(ids.len() - 1)])
    }
}

/// Enumerates every schedule of `sim` over fresh processes from `make`,
/// invoking `check` on each completed run. Returns the number of schedules
/// explored.
///
/// The walk is exhaustive: every sequence of "which runnable process steps
/// next" choices is visited exactly once. Use only on small instances —
/// the tree is exponential in the total step count.
///
/// # Panics
///
/// Panics if the exploration exceeds `max_runs` schedules (a guard against
/// accidentally exponential instances), or propagates panics from `check`.
pub fn explore_schedules<V, P, F, G>(
    sim: &SharedMemSim,
    make: G,
    mut check: F,
    max_runs: usize,
) -> usize
where
    V: Clone,
    P: MemProcess<V>,
    G: Fn() -> Vec<P>,
    F: FnMut(&MemRunReport<P, V>),
{
    let mut prefix: Vec<usize> = Vec::new();
    let mut runs = 0usize;
    loop {
        let mut scheduler = ReplayScheduler {
            prefix: &prefix,
            cursor: 0,
            branching: Vec::new(),
        };
        let report = sim
            .run(make(), &mut scheduler)
            .expect("exploration requires terminating, crash-free protocols");
        runs += 1;
        assert!(
            runs <= max_runs,
            "schedule exploration exceeded {max_runs} runs"
        );
        check(&report);

        // Advance the prefix: find the deepest decision that can still be
        // incremented; truncate everything after it.
        let branching = scheduler.branching;
        let mut full: Vec<usize> = branching
            .iter()
            .enumerate()
            .map(|(i, _)| prefix.get(i).copied().unwrap_or(0))
            .collect();
        let Some(bump) = (0..full.len())
            .rev()
            .find(|&i| full[i] + 1 < branching[i])
        else {
            return runs;
        };
        full[bump] += 1;
        full.truncate(bump + 1);
        prefix = full;
    }
}

/// Exhaustive exploration for the semi-synchronous simulator, including
/// crash choices: at every decision point the walker tries stepping each
/// live process and, while `crash_budget` allows, crashing each live
/// process.
pub mod semi_sync {
    use crate::semi_sync::{
        SemiSyncEvent, SemiSyncProcess, SemiSyncReport, SemiSyncScheduler, SemiSyncSim,
    };
    use rrfd_core::IdSet;

    struct Replay<'a> {
        prefix: &'a [usize],
        cursor: usize,
        branching: Vec<usize>,
        crash_budget: usize,
    }

    impl Replay<'_> {
        /// Options at a decision point: step each live process, then (if
        /// budget remains and more than one process is live) crash each.
        fn options(&self, live: IdSet) -> Vec<SemiSyncEvent> {
            let mut opts: Vec<SemiSyncEvent> =
                live.iter().map(SemiSyncEvent::Step).collect();
            if self.crash_budget > 0 && live.len() > 1 {
                opts.extend(live.iter().map(SemiSyncEvent::Crash));
            }
            opts
        }
    }

    impl SemiSyncScheduler for Replay<'_> {
        fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
            let opts = self.options(live);
            self.branching.push(opts.len());
            let choice = self.prefix.get(self.cursor).copied().unwrap_or(0);
            self.cursor += 1;
            let event = opts[choice.min(opts.len() - 1)];
            if let SemiSyncEvent::Crash(_) = event {
                self.crash_budget -= 1;
            }
            event
        }
    }

    /// Enumerates every semi-synchronous schedule (with up to
    /// `max_crashes` crashes at adversarially chosen instants), checking
    /// each completed run. Returns the number of schedules explored.
    ///
    /// # Panics
    ///
    /// Panics past `max_runs` schedules, or propagates `check` panics.
    pub fn explore_semi_sync<P, F, G>(
        sim: &SemiSyncSim,
        max_crashes: usize,
        make: G,
        mut check: F,
        max_runs: usize,
    ) -> usize
    where
        P: SemiSyncProcess,
        G: Fn() -> Vec<P>,
        F: FnMut(&SemiSyncReport<P>),
    {
        let mut prefix: Vec<usize> = Vec::new();
        let mut runs = 0usize;
        loop {
            let mut scheduler = Replay {
                prefix: &prefix,
                cursor: 0,
                branching: Vec::new(),
                crash_budget: max_crashes,
            };
            let report = sim
                .run(make(), &mut scheduler)
                .expect("exploration requires terminating protocols");
            runs += 1;
            assert!(
                runs <= max_runs,
                "schedule exploration exceeded {max_runs} runs"
            );
            check(&report);

            let branching = scheduler.branching;
            let mut full: Vec<usize> = branching
                .iter()
                .enumerate()
                .map(|(i, _)| prefix.get(i).copied().unwrap_or(0))
                .collect();
            let Some(bump) = (0..full.len())
                .rev()
                .find(|&i| full[i] + 1 < branching[i])
            else {
                return runs;
            };
            full[bump] += 1;
            full.truncate(bump + 1);
            prefix = full;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_mem::{Action, Observation};
    use rrfd_core::{ProcessId, SystemSize};

    /// Writes once and decides what it read from the other process's cell.
    #[derive(Debug)]
    struct WriteRead {
        me: ProcessId,
    }

    impl MemProcess<u64> for WriteRead {
        type Output = Option<u64>;
        fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
            match obs {
                Observation::Start => Action::Write {
                    bank: 0,
                    value: self.me.index() as u64 + 1,
                },
                Observation::Written => Action::Read {
                    bank: 0,
                    owner: ProcessId::new(1 - self.me.index()),
                },
                Observation::Value(v) => Action::Decide(v),
                other => unreachable!("{other:?}"),
            }
        }
    }

    #[test]
    fn enumerates_all_interleavings_of_two_three_step_processes() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let make = || {
            vec![
                WriteRead {
                    me: ProcessId::new(0),
                },
                WriteRead {
                    me: ProcessId::new(1),
                },
            ]
        };
        let mut outcomes = std::collections::BTreeSet::new();
        let runs = explore_schedules(
            &sim,
            make,
            |report| {
                outcomes.insert((
                    report.outputs[0].unwrap(),
                    report.outputs[1].unwrap(),
                ));
            },
            1000,
        );
        // Two processes, three steps each: C(6,3) = 20 interleavings.
        assert_eq!(runs, 20);
        // Classic register analysis: at least one process must see the
        // other's write; both-None is unreachable.
        assert!(!outcomes.contains(&(None, None)));
        assert!(outcomes.contains(&(Some(2), Some(1))));
        // One-sided misses are possible in either direction.
        assert!(outcomes.contains(&(None, Some(1))));
        assert!(outcomes.contains(&(Some(2), None)));
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn single_process_has_one_schedule() {
        let n = SystemSize::new(1).unwrap();
        let sim = SharedMemSim::new(n, 1);

        #[derive(Debug)]
        struct Solo;
        impl MemProcess<u64> for Solo {
            type Output = ();
            fn step(&mut self, obs: Observation<u64>) -> Action<u64, ()> {
                match obs {
                    Observation::Start => Action::Write { bank: 0, value: 1 },
                    Observation::Written => Action::Decide(()),
                    other => unreachable!("{other:?}"),
                }
            }
        }

        let runs = explore_schedules(&sim, || vec![Solo], |_| {}, 10);
        assert_eq!(runs, 1);
    }

    #[test]
    #[should_panic(expected = "exceeded 5 runs")]
    fn run_guard_fires() {
        let n = SystemSize::new(2).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let make = || {
            vec![
                WriteRead {
                    me: ProcessId::new(0),
                },
                WriteRead {
                    me: ProcessId::new(1),
                },
            ]
        };
        let _ = explore_schedules(&sim, make, |_| {}, 5);
    }
}
