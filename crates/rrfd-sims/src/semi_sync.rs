//! The semi-synchronous model of Dolev, Dwork and Stockmeyer studied in §5.
//!
//! Model properties (paper's list, with the substitution recorded in
//! `DESIGN.md`):
//!
//! * processes are fully asynchronous (no relative speed bound) and may
//!   crash;
//! * a *step* is atomic: receive every message buffered since the last
//!   step, then (optionally) broadcast one message;
//! * communication is broadcast and **synchronous**: a message broadcast at
//!   global step `t` is delivered to every process before that process
//!   takes its next step after `t` — equivalently, a process stepping at
//!   time `t' > t` receives it in that step.
//!
//! The simulator assigns each atomic step a global sequence number; the
//! scheduler chooses who steps next and who crashes. Theorem 5.1 (2-step
//! rounds supporting the identical-views RRFD) is implemented over this
//! simulator in `rrfd-protocols::semi_sync_consensus` and stress-tested
//! against random schedules.

use crate::digest::{DigestWriter, StateDigest};
use rrfd_core::{Control, IdSet, ProcessId, SystemSize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A process in the semi-synchronous model: one atomic
/// receive-all/broadcast step at a time.
pub trait SemiSyncProcess {
    /// Broadcast message type.
    type Msg: Clone;
    /// Decision type.
    type Output: Clone;

    /// Performs one atomic step: consumes everything buffered since the
    /// last step, optionally broadcasts, and possibly decides. Decided
    /// processes keep stepping (their later decisions are ignored).
    ///
    /// Messages arrive behind [`Arc`]s: a broadcast buffers one shared
    /// payload in every inbox (`n` reference counts, one allocation), and
    /// the step borrows it — the simulator never deep-copies a message.
    fn step(
        &mut self,
        received: &[(ProcessId, Arc<Self::Msg>)],
    ) -> (Option<Self::Msg>, Control<Self::Output>);
}

/// Scheduler events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiSyncEvent {
    /// The given process takes the next atomic step.
    Step(ProcessId),
    /// The given process crashes.
    Crash(ProcessId),
}

/// Chooses step order and crashes. Must be fair to live processes for
/// protocols to terminate.
///
/// The simulator only offers *undecided*, non-crashed processes for
/// scheduling: a decided process's remaining steps cannot affect anyone
/// (its decision is final), so never scheduling it again is equivalent to
/// it being arbitrarily slow — which plain asynchrony already allows.
pub trait SemiSyncScheduler {
    /// Picks the next event among `live` (undecided, non-crashed)
    /// processes.
    fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent;
}

/// Errors from [`SemiSyncSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemiSyncError {
    /// Step budget exhausted before all correct processes decided.
    StepLimitExceeded {
        /// The configured limit.
        max_steps: u64,
    },
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
}

impl fmt::Display for SemiSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiSyncError::StepLimitExceeded { max_steps } => {
                write!(f, "no full decision after {max_steps} atomic steps")
            }
            SemiSyncError::WrongProcessCount { supplied, expected } => {
                write!(
                    f,
                    "{supplied} processes supplied for a system of {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SemiSyncError {}

/// Outcome of a semi-synchronous run. Final process states are returned
/// so callers can extract protocol-internal logs (e.g. the `D(i,r)` views
/// of the §5 consensus algorithm).
#[derive(Debug, Clone)]
pub struct SemiSyncReport<P: SemiSyncProcess> {
    /// `outputs[i]` is `Some((value, steps_taken_by_i_at_decision))` once
    /// `p_i` decided; the per-process step count is the §5 complexity
    /// measure ("an algorithm that runs in 2 steps").
    pub outputs: Vec<Option<(P::Output, u64)>>,
    /// Crashed processes.
    pub crashed: IdSet,
    /// Total atomic steps executed system-wide.
    pub total_steps: u64,
    /// Final process states.
    pub processes: Vec<P>,
}

impl<P: SemiSyncProcess> SemiSyncReport<P> {
    /// `true` when every non-crashed process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.outputs
            .iter()
            .enumerate()
            .all(|(i, o)| o.is_some() || self.crashed.contains(ProcessId::new(i)))
    }

    /// The maximum per-process step count among deciders — the headline
    /// number Theorem 5.1 bounds by 2.
    #[must_use]
    pub fn max_steps_to_decide(&self) -> Option<u64> {
        self.outputs
            .iter()
            .filter_map(|o| o.as_ref().map(|&(_, s)| s))
            .max()
    }
}

/// The semi-synchronous simulator.
#[derive(Debug, Clone)]
pub struct SemiSyncSim {
    n: SystemSize,
    max_steps: u64,
}

impl SemiSyncSim {
    /// Creates a simulator for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        SemiSyncSim {
            n,
            max_steps: 1_000_000,
        }
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs until every correct process has decided.
    ///
    /// # Errors
    ///
    /// See [`SemiSyncError`].
    pub fn run<P, S>(
        &self,
        processes: Vec<P>,
        scheduler: &mut S,
    ) -> Result<SemiSyncReport<P>, SemiSyncError>
    where
        P: SemiSyncProcess,
        S: SemiSyncScheduler + ?Sized,
    {
        let mut exec = SemiSyncExecution::start(self, processes)?;
        loop {
            let live = exec.live();
            if live.is_empty() {
                return Ok(exec.into_report());
            }
            if exec.at_limit() {
                return Err(SemiSyncError::StepLimitExceeded {
                    max_steps: self.max_steps,
                });
            }
            let event = scheduler.next_event(live, exec.total_steps());
            exec.apply(event)?;
        }
    }
}

/// The state of one semi-synchronous run, advanced one scheduler event at
/// a time — the incremental form [`SemiSyncSim::run`] loops over, and the
/// parallel explorer clones at decision points.
#[derive(Debug)]
pub struct SemiSyncExecution<P: SemiSyncProcess> {
    sim: SemiSyncSim,
    // Per-process inbox of messages not yet consumed by a step. Entries
    // are Arc-shared across inboxes, so cloning an execution at an
    // exploration decision point bumps reference counts instead of
    // deep-copying every buffered payload.
    inboxes: Vec<VecDeque<(ProcessId, Arc<P::Msg>)>>,
    outputs: Vec<Option<(P::Output, u64)>>,
    step_counts: Vec<u64>,
    crashed: IdSet,
    total_steps: u64,
    events: u64,
    processes: Vec<P>,
}

impl<P> Clone for SemiSyncExecution<P>
where
    P: SemiSyncProcess + Clone,
{
    fn clone(&self) -> Self {
        SemiSyncExecution {
            sim: self.sim.clone(),
            inboxes: self.inboxes.clone(),
            outputs: self.outputs.clone(),
            step_counts: self.step_counts.clone(),
            crashed: self.crashed,
            total_steps: self.total_steps,
            events: self.events,
            processes: self.processes.clone(),
        }
    }
}

impl<P: SemiSyncProcess> SemiSyncExecution<P> {
    /// Begins a run of `processes` on `sim`, before any event.
    ///
    /// # Errors
    ///
    /// [`SemiSyncError::WrongProcessCount`] when the protocol vector does
    /// not match the system size.
    pub fn start(sim: &SemiSyncSim, processes: Vec<P>) -> Result<Self, SemiSyncError> {
        let n = sim.n.get();
        if processes.len() != n {
            return Err(SemiSyncError::WrongProcessCount {
                supplied: processes.len(),
                expected: n,
            });
        }
        Ok(SemiSyncExecution {
            sim: sim.clone(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            outputs: (0..n).map(|_| None).collect(),
            step_counts: vec![0u64; n],
            crashed: IdSet::empty(),
            total_steps: 0,
            events: 0,
            processes,
        })
    }

    /// Undecided, non-crashed processes. Empty exactly when the run is
    /// complete.
    #[must_use]
    pub fn live(&self) -> IdSet {
        (0..self.sim.n.get())
            .map(ProcessId::new)
            .filter(|&p| !self.crashed.contains(p) && self.outputs[p.index()].is_none())
            .collect()
    }

    /// Atomic steps executed system-wide so far.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    fn at_limit(&self) -> bool {
        let event_limit = self.sim.max_steps.saturating_mul(4).saturating_add(1024);
        self.total_steps >= self.sim.max_steps || self.events >= event_limit
    }

    /// Applies one scheduler event. Events naming a non-live process are
    /// counted but otherwise ignored, mirroring [`SemiSyncSim::run`].
    ///
    /// # Errors
    ///
    /// See [`SemiSyncError`].
    pub fn apply(&mut self, event: SemiSyncEvent) -> Result<(), SemiSyncError> {
        if self.at_limit() {
            return Err(SemiSyncError::StepLimitExceeded {
                max_steps: self.sim.max_steps,
            });
        }
        self.events += 1;
        let live = self.live();
        match event {
            SemiSyncEvent::Crash(p) => {
                if live.contains(p) {
                    self.crashed.insert(p);
                }
            }
            SemiSyncEvent::Step(p) => {
                if !live.contains(p) {
                    return Ok(());
                }
                self.total_steps += 1;
                self.step_counts[p.index()] += 1;
                let received: Vec<(ProcessId, Arc<P::Msg>)> =
                    self.inboxes[p.index()].drain(..).collect();
                let (broadcast, verdict) = self.processes[p.index()].step(&received);
                if let Some(broadcast) = broadcast {
                    // Synchronous communication: buffered everywhere at
                    // once; consumed at each recipient's next step. One
                    // allocation, n reference counts.
                    let shared = Arc::new(broadcast);
                    for inbox in &mut self.inboxes {
                        inbox.push_back((p, Arc::clone(&shared)));
                    }
                }
                if let Control::Decide(v) = verdict {
                    let count = self.step_counts[p.index()];
                    self.outputs[p.index()].get_or_insert((v, count));
                }
            }
        }
        Ok(())
    }

    /// Packages the current state as a run report — typically called once
    /// [`SemiSyncExecution::live`] is empty.
    #[must_use]
    pub fn into_report(self) -> SemiSyncReport<P> {
        SemiSyncReport {
            outputs: self.outputs,
            crashed: self.crashed,
            total_steps: self.total_steps,
            processes: self.processes,
        }
    }

    /// Writes the canonical encoding of everything that can still
    /// influence the run's outcome: inbox contents (sender order matters —
    /// a step consumes its whole inbox in arrival order), outputs with
    /// their per-process step counts, the crash set, the step counters,
    /// and the protocol states. Unlike shared memory there is no opaque
    /// oracle state, so every semi-synchronous execution is digestible.
    pub fn digest_into(&self, w: &mut DigestWriter)
    where
        P: StateDigest,
        P::Msg: StateDigest,
        P::Output: StateDigest,
    {
        self.inboxes.digest(w);
        self.outputs.digest(w);
        self.step_counts.digest(w);
        self.crashed.digest(w);
        w.write_u64(self.total_steps);
        w.write_len(self.processes.len());
        for p in &self.processes {
            p.digest(w);
        }
    }
}

/// Round-robin fair scheduler without crashes.
#[derive(Debug, Clone, Default)]
pub struct FairSemiSync {
    cursor: usize,
}

impl FairSemiSync {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FairSemiSync { cursor: 0 }
    }
}

impl SemiSyncScheduler for FairSemiSync {
    fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
        let ids: Vec<ProcessId> = live.iter().collect();
        let pick = ids
            .iter()
            .copied()
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(ids[0]);
        self.cursor = pick.index() + 1;
        SemiSyncEvent::Step(pick)
    }
}

/// Seeded random scheduler with a crash budget. All but one process may
/// crash (the §5 model's resilience); the budget is the caller's choice.
#[derive(Debug, Clone)]
pub struct RandomSemiSync {
    rng: rand::rngs::StdRng,
    crash_budget: usize,
    crash_prob: f64,
}

impl RandomSemiSync {
    /// Creates a scheduler with up to `max_crashes` crashes.
    #[must_use]
    pub fn new(seed: u64, max_crashes: usize) -> Self {
        use rand::SeedableRng;
        RandomSemiSync {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            crash_budget: max_crashes,
            crash_prob: 0.02,
        }
    }

    /// Overrides the per-event crash probability (default 2%).
    #[must_use]
    pub fn crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl SemiSyncScheduler for RandomSemiSync {
    fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
        use rand::seq::IteratorRandom;
        use rand::Rng;
        let pick = live
            .iter()
            .choose(&mut self.rng)
            .expect("simulator guarantees live is non-empty");
        if self.crash_budget > 0 && live.len() > 1 && self.rng.gen_bool(self.crash_prob) {
            self.crash_budget -= 1;
            SemiSyncEvent::Crash(pick)
        } else {
            SemiSyncEvent::Step(pick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Broadcasts once; decides on the set of distinct senders seen in its
    /// first `budget` steps.
    #[derive(Debug)]
    struct Listen {
        budget: u64,
        steps: u64,
        heard: IdSet,
        sent: bool,
    }

    impl Listen {
        fn new(budget: u64) -> Self {
            Listen {
                budget,
                steps: 0,
                heard: IdSet::empty(),
                sent: false,
            }
        }
    }

    impl SemiSyncProcess for Listen {
        type Msg = ();
        type Output = usize;
        fn step(&mut self, received: &[(ProcessId, Arc<()>)]) -> (Option<()>, Control<usize>) {
            self.steps += 1;
            for &(from, _) in received {
                self.heard.insert(from);
            }
            let msg = if self.sent {
                None
            } else {
                self.sent = true;
                Some(())
            };
            if self.steps >= self.budget {
                (msg, Control::Decide(self.heard.len()))
            } else {
                (msg, Control::Continue)
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_by_their_next_step() {
        let size = n(4);
        // Everyone listens for 2 steps: first step broadcasts, second step
        // must have received every first-step broadcast that happened
        // earlier — under round-robin everyone hears everyone.
        let procs: Vec<_> = (0..4).map(|_| Listen::new(2)).collect();
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert!(report.all_correct_decided());
        for out in &report.outputs {
            assert_eq!(out.as_ref().unwrap().0, 4);
        }
        assert_eq!(report.max_steps_to_decide(), Some(2));
    }

    #[test]
    fn own_broadcast_is_delivered_to_self() {
        let size = n(1);
        let procs = vec![Listen::new(2)];
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert_eq!(report.outputs[0].as_ref().unwrap().0, 1);
    }

    #[test]
    fn random_schedules_with_crashes_terminate() {
        let size = n(5);
        for seed in 0..20u64 {
            let procs: Vec<_> = (0..5).map(|_| Listen::new(3)).collect();
            let mut sched = RandomSemiSync::new(seed, 4);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.crashed.len() <= 4);
        }
    }

    #[test]
    fn crashed_process_stops_stepping() {
        let size = n(2);

        struct CrashThenFair {
            crashed: bool,
            inner: FairSemiSync,
        }
        impl SemiSyncScheduler for CrashThenFair {
            fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent {
                if !self.crashed {
                    self.crashed = true;
                    return SemiSyncEvent::Crash(ProcessId::new(1));
                }
                self.inner.next_event(live, step)
            }
        }

        let procs: Vec<_> = (0..2).map(|_| Listen::new(2)).collect();
        let mut sched = CrashThenFair {
            crashed: false,
            inner: FairSemiSync::new(),
        };
        let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
        assert!(report.crashed.contains(ProcessId::new(1)));
        assert!(report.outputs[1].is_none());
        // p0 only ever hears itself.
        assert_eq!(report.outputs[0].as_ref().unwrap().0, 1);
    }

    #[test]
    fn step_limit_is_enforced() {
        let size = n(2);
        let procs: Vec<_> = (0..2).map(|_| Listen::new(1_000_000)).collect();
        let err = SemiSyncSim::new(size)
            .max_steps(100)
            .run(procs, &mut FairSemiSync::new())
            .unwrap_err();
        assert_eq!(err, SemiSyncError::StepLimitExceeded { max_steps: 100 });
    }
}
