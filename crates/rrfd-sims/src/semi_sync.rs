//! The semi-synchronous model of Dolev, Dwork and Stockmeyer studied in §5.
//!
//! Model properties (paper's list, with the substitution recorded in
//! `DESIGN.md`):
//!
//! * processes are fully asynchronous (no relative speed bound) and may
//!   crash;
//! * a *step* is atomic: receive every message buffered since the last
//!   step, then (optionally) broadcast one message;
//! * communication is broadcast and **synchronous**: a message broadcast at
//!   global step `t` is delivered to every process before that process
//!   takes its next step after `t` — equivalently, a process stepping at
//!   time `t' > t` receives it in that step.
//!
//! The simulator assigns each atomic step a global sequence number; the
//! scheduler chooses who steps next and who crashes. Theorem 5.1 (2-step
//! rounds supporting the identical-views RRFD) is implemented over this
//! simulator in `rrfd-protocols::semi_sync_consensus` and stress-tested
//! against random schedules.

use rrfd_core::{Control, IdSet, ProcessId, SystemSize};
use std::collections::VecDeque;
use std::fmt;

/// A process in the semi-synchronous model: one atomic
/// receive-all/broadcast step at a time.
pub trait SemiSyncProcess {
    /// Broadcast message type.
    type Msg: Clone;
    /// Decision type.
    type Output: Clone;

    /// Performs one atomic step: consumes everything buffered since the
    /// last step, optionally broadcasts, and possibly decides. Decided
    /// processes keep stepping (their later decisions are ignored).
    fn step(
        &mut self,
        received: &[(ProcessId, Self::Msg)],
    ) -> (Option<Self::Msg>, Control<Self::Output>);
}

/// Scheduler events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiSyncEvent {
    /// The given process takes the next atomic step.
    Step(ProcessId),
    /// The given process crashes.
    Crash(ProcessId),
}

/// Chooses step order and crashes. Must be fair to live processes for
/// protocols to terminate.
///
/// The simulator only offers *undecided*, non-crashed processes for
/// scheduling: a decided process's remaining steps cannot affect anyone
/// (its decision is final), so never scheduling it again is equivalent to
/// it being arbitrarily slow — which plain asynchrony already allows.
pub trait SemiSyncScheduler {
    /// Picks the next event among `live` (undecided, non-crashed)
    /// processes.
    fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent;
}

/// Errors from [`SemiSyncSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemiSyncError {
    /// Step budget exhausted before all correct processes decided.
    StepLimitExceeded {
        /// The configured limit.
        max_steps: u64,
    },
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
}

impl fmt::Display for SemiSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiSyncError::StepLimitExceeded { max_steps } => {
                write!(f, "no full decision after {max_steps} atomic steps")
            }
            SemiSyncError::WrongProcessCount { supplied, expected } => {
                write!(
                    f,
                    "{supplied} processes supplied for a system of {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SemiSyncError {}

/// Outcome of a semi-synchronous run. Final process states are returned
/// so callers can extract protocol-internal logs (e.g. the `D(i,r)` views
/// of the §5 consensus algorithm).
#[derive(Debug, Clone)]
pub struct SemiSyncReport<P: SemiSyncProcess> {
    /// `outputs[i]` is `Some((value, steps_taken_by_i_at_decision))` once
    /// `p_i` decided; the per-process step count is the §5 complexity
    /// measure ("an algorithm that runs in 2 steps").
    pub outputs: Vec<Option<(P::Output, u64)>>,
    /// Crashed processes.
    pub crashed: IdSet,
    /// Total atomic steps executed system-wide.
    pub total_steps: u64,
    /// Final process states.
    pub processes: Vec<P>,
}

impl<P: SemiSyncProcess> SemiSyncReport<P> {
    /// `true` when every non-crashed process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.outputs
            .iter()
            .enumerate()
            .all(|(i, o)| o.is_some() || self.crashed.contains(ProcessId::new(i)))
    }

    /// The maximum per-process step count among deciders — the headline
    /// number Theorem 5.1 bounds by 2.
    #[must_use]
    pub fn max_steps_to_decide(&self) -> Option<u64> {
        self.outputs
            .iter()
            .filter_map(|o| o.as_ref().map(|&(_, s)| s))
            .max()
    }
}

/// The semi-synchronous simulator.
#[derive(Debug, Clone)]
pub struct SemiSyncSim {
    n: SystemSize,
    max_steps: u64,
}

impl SemiSyncSim {
    /// Creates a simulator for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        SemiSyncSim {
            n,
            max_steps: 1_000_000,
        }
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs until every correct process has decided.
    ///
    /// # Errors
    ///
    /// See [`SemiSyncError`].
    pub fn run<P, S>(
        &self,
        mut processes: Vec<P>,
        scheduler: &mut S,
    ) -> Result<SemiSyncReport<P>, SemiSyncError>
    where
        P: SemiSyncProcess,
        S: SemiSyncScheduler + ?Sized,
    {
        let n = self.n.get();
        if processes.len() != n {
            return Err(SemiSyncError::WrongProcessCount {
                supplied: processes.len(),
                expected: n,
            });
        }

        // Per-process inbox of messages not yet consumed by a step.
        let mut inboxes: Vec<VecDeque<(ProcessId, P::Msg)>> =
            (0..n).map(|_| VecDeque::new()).collect();
        let mut outputs: Vec<Option<(P::Output, u64)>> = (0..n).map(|_| None).collect();
        let mut step_counts = vec![0u64; n];
        let mut crashed = IdSet::empty();
        let mut total_steps = 0u64;
        let mut events = 0u64;
        let event_limit = self.max_steps.saturating_mul(4).saturating_add(1024);

        loop {
            let done = (0..n).all(|i| outputs[i].is_some() || crashed.contains(ProcessId::new(i)));
            if done {
                return Ok(SemiSyncReport {
                    outputs,
                    crashed,
                    total_steps,
                    processes,
                });
            }
            if total_steps >= self.max_steps || events >= event_limit {
                return Err(SemiSyncError::StepLimitExceeded {
                    max_steps: self.max_steps,
                });
            }
            events += 1;

            let live: IdSet = (0..n)
                .map(ProcessId::new)
                .filter(|&p| !crashed.contains(p) && outputs[p.index()].is_none())
                .collect();

            match scheduler.next_event(live, total_steps) {
                SemiSyncEvent::Crash(p) => {
                    if live.contains(p) {
                        crashed.insert(p);
                    }
                }
                SemiSyncEvent::Step(p) => {
                    if !live.contains(p) {
                        continue;
                    }
                    total_steps += 1;
                    step_counts[p.index()] += 1;
                    let received: Vec<(ProcessId, P::Msg)> = inboxes[p.index()].drain(..).collect();
                    let (broadcast, verdict) = processes[p.index()].step(&received);
                    if let Some(msg) = broadcast {
                        // Synchronous communication: buffered everywhere at
                        // once; consumed at each recipient's next step.
                        for inbox in &mut inboxes {
                            inbox.push_back((p, msg.clone()));
                        }
                    }
                    if let Control::Decide(v) = verdict {
                        let count = step_counts[p.index()];
                        outputs[p.index()].get_or_insert((v, count));
                    }
                }
            }
        }
    }
}

/// Round-robin fair scheduler without crashes.
#[derive(Debug, Clone, Default)]
pub struct FairSemiSync {
    cursor: usize,
}

impl FairSemiSync {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FairSemiSync { cursor: 0 }
    }
}

impl SemiSyncScheduler for FairSemiSync {
    fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
        let ids: Vec<ProcessId> = live.iter().collect();
        let pick = ids
            .iter()
            .copied()
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(ids[0]);
        self.cursor = pick.index() + 1;
        SemiSyncEvent::Step(pick)
    }
}

/// Seeded random scheduler with a crash budget. All but one process may
/// crash (the §5 model's resilience); the budget is the caller's choice.
#[derive(Debug, Clone)]
pub struct RandomSemiSync {
    rng: rand::rngs::StdRng,
    crash_budget: usize,
    crash_prob: f64,
}

impl RandomSemiSync {
    /// Creates a scheduler with up to `max_crashes` crashes.
    #[must_use]
    pub fn new(seed: u64, max_crashes: usize) -> Self {
        use rand::SeedableRng;
        RandomSemiSync {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            crash_budget: max_crashes,
            crash_prob: 0.02,
        }
    }

    /// Overrides the per-event crash probability (default 2%).
    #[must_use]
    pub fn crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl SemiSyncScheduler for RandomSemiSync {
    fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
        use rand::seq::IteratorRandom;
        use rand::Rng;
        let pick = live
            .iter()
            .choose(&mut self.rng)
            .expect("simulator guarantees live is non-empty");
        if self.crash_budget > 0 && live.len() > 1 && self.rng.gen_bool(self.crash_prob) {
            self.crash_budget -= 1;
            SemiSyncEvent::Crash(pick)
        } else {
            SemiSyncEvent::Step(pick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Broadcasts once; decides on the set of distinct senders seen in its
    /// first `budget` steps.
    #[derive(Debug)]
    struct Listen {
        budget: u64,
        steps: u64,
        heard: IdSet,
        sent: bool,
    }

    impl Listen {
        fn new(budget: u64) -> Self {
            Listen {
                budget,
                steps: 0,
                heard: IdSet::empty(),
                sent: false,
            }
        }
    }

    impl SemiSyncProcess for Listen {
        type Msg = ();
        type Output = usize;
        fn step(&mut self, received: &[(ProcessId, ())]) -> (Option<()>, Control<usize>) {
            self.steps += 1;
            for &(from, ()) in received {
                self.heard.insert(from);
            }
            let msg = if self.sent {
                None
            } else {
                self.sent = true;
                Some(())
            };
            if self.steps >= self.budget {
                (msg, Control::Decide(self.heard.len()))
            } else {
                (msg, Control::Continue)
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_by_their_next_step() {
        let size = n(4);
        // Everyone listens for 2 steps: first step broadcasts, second step
        // must have received every first-step broadcast that happened
        // earlier — under round-robin everyone hears everyone.
        let procs: Vec<_> = (0..4).map(|_| Listen::new(2)).collect();
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert!(report.all_correct_decided());
        for out in &report.outputs {
            assert_eq!(out.as_ref().unwrap().0, 4);
        }
        assert_eq!(report.max_steps_to_decide(), Some(2));
    }

    #[test]
    fn own_broadcast_is_delivered_to_self() {
        let size = n(1);
        let procs = vec![Listen::new(2)];
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert_eq!(report.outputs[0].as_ref().unwrap().0, 1);
    }

    #[test]
    fn random_schedules_with_crashes_terminate() {
        let size = n(5);
        for seed in 0..20u64 {
            let procs: Vec<_> = (0..5).map(|_| Listen::new(3)).collect();
            let mut sched = RandomSemiSync::new(seed, 4);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.crashed.len() <= 4);
        }
    }

    #[test]
    fn crashed_process_stops_stepping() {
        let size = n(2);

        struct CrashThenFair {
            crashed: bool,
            inner: FairSemiSync,
        }
        impl SemiSyncScheduler for CrashThenFair {
            fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent {
                if !self.crashed {
                    self.crashed = true;
                    return SemiSyncEvent::Crash(ProcessId::new(1));
                }
                self.inner.next_event(live, step)
            }
        }

        let procs: Vec<_> = (0..2).map(|_| Listen::new(2)).collect();
        let mut sched = CrashThenFair {
            crashed: false,
            inner: FairSemiSync::new(),
        };
        let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
        assert!(report.crashed.contains(ProcessId::new(1)));
        assert!(report.outputs[1].is_none());
        // p0 only ever hears itself.
        assert_eq!(report.outputs[0].as_ref().unwrap().0, 1);
    }

    #[test]
    fn step_limit_is_enforced() {
        let size = n(2);
        let procs: Vec<_> = (0..2).map(|_| Listen::new(1_000_000)).collect();
        let err = SemiSyncSim::new(size)
            .max_steps(100)
            .run(procs, &mut FairSemiSync::new())
            .unwrap_err();
        assert_eq!(err, SemiSyncError::StepLimitExceeded { max_steps: 100 });
    }
}
