//! The round overlay of §2 item 3: communication-closed layers over the
//! asynchronous network.
//!
//! "System N implements A by simulating rounds, discarding messages that
//! have been missed, and buffering messages which are too early. Each round
//! a process waits until it receives `n − f` messages of the round."
//!
//! [`RoundedAsync`] wraps any [`rrfd_core::RoundProtocol`] as an
//! [`AsyncProcess`]: it tags each message with its round, buffers early
//! arrivals, discards late ones, and advances when `n − f` round-`r`
//! messages (its own included) have arrived. Crucially it records the set
//! `D(i,r)` of processes it had *not* heard from at the moment of
//! advancing — the extraction experiment E1 then machine-checks that these
//! sets satisfy the eq. 3 predicate `|D(i,r)| ≤ f`.

use crate::async_net::{AsyncProcess, Outbox};
use rrfd_core::{
    Control, Delivery, IdSet, ProcessId, Round, RoundFaults, RoundProtocol, SystemSize,
};
use std::collections::BTreeMap;

/// A message of the round overlay: the inner payload tagged with its round.
#[derive(Debug, Clone)]
pub struct RoundMsg<M> {
    /// The round this payload belongs to.
    pub round: Round,
    /// The inner protocol's message.
    pub payload: M,
}

/// Wraps a [`RoundProtocol`] for execution on the asynchronous network.
#[derive(Debug)]
pub struct RoundedAsync<P: RoundProtocol> {
    me: ProcessId,
    n: SystemSize,
    f: usize,
    inner: P,
    round: Round,
    /// Payloads received for the *current* round, indexed by sender.
    current: Vec<Option<P::Msg>>,
    /// Early messages for future rounds.
    early: BTreeMap<Round, Vec<(ProcessId, P::Msg)>>,
    /// The recorded `D(i,r)` for each completed round.
    fault_log: Vec<IdSet>,
    decided: bool,
}

impl<P: RoundProtocol> RoundedAsync<P> {
    /// Wraps `inner` for a system of `n` processes tolerating `f` crashes.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n`.
    #[must_use]
    pub fn new(me: ProcessId, n: SystemSize, f: usize, inner: P) -> Self {
        assert!(f < n.get(), "round overlay requires f < n");
        RoundedAsync {
            me,
            n,
            f,
            inner,
            round: Round::FIRST,
            current: vec![None; n.get()],
            early: BTreeMap::new(),
            fault_log: Vec::new(),
            decided: false,
        }
    }

    /// The `D(me, r)` sets recorded so far, one per completed round.
    #[must_use]
    pub fn fault_log(&self) -> &[IdSet] {
        &self.fault_log
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many round-`r` messages have arrived.
    fn arrived(&self) -> usize {
        self.current.iter().filter(|m| m.is_some()).count()
    }

    /// Completes the current round if the `n − f` quorum is met, feeding
    /// the inner protocol and emitting the next round's message. Loops in
    /// case buffered early messages immediately complete the next round
    /// too.
    fn try_advance(&mut self, out: &mut Outbox<RoundMsg<P::Msg>>) -> Control<P::Output> {
        let mut decision = Control::Continue;
        while self.arrived() >= self.n.get() - self.f {
            // D(i,r): whoever had not arrived when the quorum closed.
            let suspected: IdSet = self
                .current
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_none())
                .map(|(j, _)| ProcessId::new(j))
                .collect();
            self.fault_log.push(suspected);

            let received = std::mem::replace(&mut self.current, vec![None; self.n.get()]);
            let verdict = self
                .inner
                .deliver(Delivery::new(self.round, self.me, &received, suspected));
            if let Control::Decide(v) = verdict {
                if !self.decided {
                    self.decided = true;
                    decision = Control::Decide(v);
                }
            }

            self.round = self.round.next();
            let payload = self.inner.emit(self.round);
            out.broadcast(RoundMsg {
                round: self.round,
                payload,
            });
            // Replay buffered messages for the new current round.
            if let Some(buffered) = self.early.remove(&self.round) {
                for (from, payload) in buffered {
                    self.current[from.index()] = Some(payload);
                }
            }
        }
        decision
    }
}

impl<P: RoundProtocol> AsyncProcess for RoundedAsync<P> {
    type Msg = RoundMsg<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self, out: &mut Outbox<Self::Msg>) {
        let payload = self.inner.emit(Round::FIRST);
        out.broadcast(RoundMsg {
            round: Round::FIRST,
            payload,
        });
    }

    fn on_message(
        &mut self,
        _now: u64,
        from: ProcessId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    ) -> Control<Self::Output> {
        use std::cmp::Ordering;
        match msg.round.cmp(&self.round) {
            Ordering::Less => {} // late: discard
            Ordering::Equal => {
                self.current[from.index()] = Some(msg.payload);
            }
            Ordering::Greater => {
                self.early
                    .entry(msg.round)
                    .or_default()
                    .push((from, msg.payload));
            }
        }
        self.try_advance(out)
    }
}

/// Assembles per-round [`RoundFaults`] views from the per-process fault
/// logs of a finished run. Every process must have recorded all `rounds`
/// requested rounds — pass the *minimum* log length over the processes of
/// interest (crashed processes have shorter logs and should be excluded
/// from the request, or the call panics).
///
/// Returns `rounds` many [`RoundFaults`].
///
/// # Panics
///
/// Panics if some requested round was not recorded by some process.
#[must_use]
pub fn collect_fault_rounds<P: RoundProtocol>(
    n: SystemSize,
    processes: &[RoundedAsync<P>],
    rounds: usize,
) -> Vec<RoundFaults> {
    (0..rounds)
        .map(|r| {
            let sets = processes
                .iter()
                .map(|p| {
                    *p.fault_log()
                        .get(r)
                        .unwrap_or_else(|| panic!("{} did not record round {}", p.me, r + 1))
                })
                .collect();
            RoundFaults::from_sets(n, sets)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_net::{AsyncNetSim, FifoNetScheduler, RandomNetScheduler};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Inner protocol: gossip for `rounds` rounds, then decide the count of
    /// distinct processes ever heard from.
    struct CountHeard {
        rounds: u32,
        heard: IdSet,
    }

    impl CountHeard {
        fn new(rounds: u32) -> Self {
            CountHeard {
                rounds,
                heard: IdSet::empty(),
            }
        }
    }

    impl RoundProtocol for CountHeard {
        type Msg = ();
        type Output = usize;
        fn emit(&mut self, _round: Round) {}
        fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<usize> {
            self.heard |= d.heard_from();
            if d.round.get() >= self.rounds {
                Control::Decide(self.heard.len())
            } else {
                Control::Continue
            }
        }
    }

    #[test]
    fn rounds_complete_on_a_fifo_network() {
        let size = n(4);
        let procs: Vec<_> = size
            .processes()
            .map(|p| RoundedAsync::new(p, size, 1, CountHeard::new(3)))
            .collect();
        let report = AsyncNetSim::new(size)
            .run(procs, &mut FifoNetScheduler::new())
            .unwrap();
        assert!(report.all_correct_decided());
        for p in &report.processes {
            assert!(p.fault_log().len() >= 3);
        }
    }

    #[test]
    fn extracted_faults_satisfy_eq3() {
        let size = n(5);
        let f = 2;
        for seed in 0..15u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| RoundedAsync::new(p, size, f, CountHeard::new(4)))
                .collect();
            let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.01);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();

            // Check |D(i,r)| ≤ f for every recorded round of every correct
            // process (crashed ones may have partial logs; eq. 3 is
            // per-process so check them all anyway).
            for p in &report.processes {
                for d in p.fault_log() {
                    assert!(d.len() <= f, "seed {seed}: |D| = {} > f = {f}", d.len());
                }
            }
        }
    }

    #[test]
    fn late_messages_are_discarded_early_ones_buffered() {
        // Drive the overlay by hand: deliver a round-2 message first, then
        // complete round 1, and check the early message counts for round 2.
        let size = n(3);
        let mut p = RoundedAsync::new(ProcessId::new(0), size, 1, CountHeard::new(2));
        let mut out = Outbox::new(size);
        p.on_start(&mut out);

        // Early round-2 message from p1.
        let mut sink = Outbox::new(size);
        let verdict = p.on_message(
            1,
            ProcessId::new(1),
            RoundMsg {
                round: Round::new(2),
                payload: (),
            },
            &mut sink,
        );
        assert!(matches!(verdict, Control::Continue));
        assert_eq!(p.round, Round::FIRST);

        // Round-1 messages from self and p1: quorum n − f = 2 met after
        // two arrivals, advancing to round 2, where the buffered message
        // counts immediately: quorum for round 2 needs one more (own).
        for sender in [0usize, 1] {
            let _ = p.on_message(
                2,
                ProcessId::new(sender),
                RoundMsg {
                    round: Round::FIRST,
                    payload: (),
                },
                &mut sink,
            );
        }
        assert_eq!(p.round.get(), 2);
        assert_eq!(p.arrived(), 1, "buffered early message was replayed");

        // A late round-1 message is discarded silently.
        let before = p.arrived();
        let _ = p.on_message(
            3,
            ProcessId::new(2),
            RoundMsg {
                round: Round::FIRST,
                payload: (),
            },
            &mut sink,
        );
        assert_eq!(p.arrived(), before);
    }

    #[test]
    fn collect_assembles_per_round_views() {
        let size = n(3);
        let procs: Vec<_> = size
            .processes()
            .map(|p| RoundedAsync::new(p, size, 0, CountHeard::new(2)))
            .collect();
        let report = AsyncNetSim::new(size)
            .run(procs, &mut FifoNetScheduler::new())
            .unwrap();
        let rounds = collect_fault_rounds(size, &report.processes, 2);
        assert_eq!(rounds.len(), 2);
        for rf in rounds {
            // f = 0: nobody may be suspected.
            assert!(rf.union().is_empty());
        }
    }
}
