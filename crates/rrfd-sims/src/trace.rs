//! Schedule capture and replay for the classical simulators.
//!
//! The simulators in this crate are deterministic once the scheduler's
//! choices are fixed, so a run is fully described by its event sequence:
//! which process stepped or crashed (shared memory, semi-synchrony), or
//! which channel delivered and who crashed (asynchronous network). This
//! module captures that sequence as a serializable [`ScheduleTrace`] —
//! wrap any scheduler in [`Recording`] — and re-drives it with
//! [`ScheduleReplay`], the scheduler-level analogue of the engine-level
//! `RunTrace` / `ReplayDetector` pair in `rrfd-core` / `rrfd-models`.
//!
//! The text format is line-oriented: a `rrfd-sched v1` header, then one
//! event per line (`step 3`, `crash 1`, `deliver 0>2`). A failing
//! schedule pasted from a test log can therefore be replayed verbatim.

use crate::async_net::{NetEvent, NetScheduler};
use crate::semi_sync::{SemiSyncEvent, SemiSyncScheduler};
use crate::shared_mem::{MemEvent, MemScheduler};
use rrfd_core::lineformat::{body_lines, parse_process_id as parse_pid};
use rrfd_core::{IdSet, ProcessId};
use std::fmt;
use std::str::FromStr;

/// A scheduler event that can be written to and read back from the
/// line-oriented trace format.
pub trait SchedEvent: Copy + fmt::Debug + PartialEq {
    /// Writes the event as one trace line (no newline).
    fn write_event(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;
    /// Parses one trace line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    fn parse_event(line: &str) -> Result<Self, String>;
}

impl SchedEvent for MemEvent {
    fn write_event(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemEvent::Step(p) => write!(f, "step {}", p.index()),
            MemEvent::Crash(p) => write!(f, "crash {}", p.index()),
        }
    }

    fn parse_event(line: &str) -> Result<Self, String> {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["step", p] => Ok(MemEvent::Step(parse_pid(p)?)),
            ["crash", p] => Ok(MemEvent::Crash(parse_pid(p)?)),
            _ => Err(format!("unrecognised event {line:?}")),
        }
    }
}

impl SchedEvent for SemiSyncEvent {
    fn write_event(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiSyncEvent::Step(p) => write!(f, "step {}", p.index()),
            SemiSyncEvent::Crash(p) => write!(f, "crash {}", p.index()),
        }
    }

    fn parse_event(line: &str) -> Result<Self, String> {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["step", p] => Ok(SemiSyncEvent::Step(parse_pid(p)?)),
            ["crash", p] => Ok(SemiSyncEvent::Crash(parse_pid(p)?)),
            _ => Err(format!("unrecognised event {line:?}")),
        }
    }
}

impl SchedEvent for NetEvent {
    fn write_event(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetEvent::Deliver { from, to } => {
                write!(f, "deliver {}>{}", from.index(), to.index())
            }
            NetEvent::Crash(p) => write!(f, "crash {}", p.index()),
        }
    }

    fn parse_event(line: &str) -> Result<Self, String> {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["deliver", pair] => {
                let (from, to) = pair
                    .split_once('>')
                    .ok_or_else(|| format!("bad channel {pair:?}"))?;
                Ok(NetEvent::Deliver {
                    from: parse_pid(from)?,
                    to: parse_pid(to)?,
                })
            }
            ["crash", p] => Ok(NetEvent::Crash(parse_pid(p)?)),
            _ => Err(format!("unrecognised event {line:?}")),
        }
    }
}

/// The recorded event sequence of one simulator run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleTrace<E> {
    events: Vec<E>,
}

impl<E> ScheduleTrace<E> {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ScheduleTrace { events: Vec::new() }
    }

    /// Wraps an explicit event sequence.
    #[must_use]
    pub fn from_events(events: Vec<E>) -> Self {
        ScheduleTrace { events }
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[E] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<E: SchedEvent> fmt::Display for ScheduleTrace<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rrfd-sched v1")?;
        for event in &self.events {
            event.write_event(f)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error from parsing a serialized [`ScheduleTrace`]. An alias of the
/// workspace-wide [`rrfd_core::LineError`]: every line-oriented trace
/// format reports failures the same way (1-based `line`, free-form
/// `message`).
pub type ParseScheduleError = rrfd_core::LineError;

impl<E: SchedEvent> FromStr for ScheduleTrace<E> {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut events = Vec::new();
        for (line_no, line) in body_lines(s, "rrfd-sched v1")? {
            events.push(
                E::parse_event(line)
                    .map_err(|message| ParseScheduleError::new(line_no, message))?,
            );
        }
        Ok(ScheduleTrace { events })
    }
}

/// Wraps a scheduler and records every event it chooses.
///
/// # Examples
///
/// ```
/// use rrfd_sims::shared_mem::{MemEvent, RandomScheduler};
/// use rrfd_sims::trace::Recording;
///
/// let mut sched: Recording<_, MemEvent> =
///     Recording::new(RandomScheduler::new(7, 0));
/// // ... pass `&mut sched` to `SharedMemSim::run` ...
/// let (_inner, trace) = sched.into_parts();
/// assert!(trace.is_empty()); // nothing ran in this toy example
/// ```
#[derive(Debug, Clone)]
pub struct Recording<S, E> {
    inner: S,
    events: Vec<E>,
}

impl<S, E> Recording<S, E> {
    /// Wraps `inner`, starting with an empty recording.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Recording {
            inner,
            events: Vec::new(),
        }
    }

    /// The wrapped scheduler.
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> ScheduleTrace<E>
    where
        E: Clone,
    {
        ScheduleTrace {
            events: self.events.clone(),
        }
    }

    /// Unwraps into the inner scheduler and the recorded trace.
    #[must_use]
    pub fn into_parts(self) -> (S, ScheduleTrace<E>) {
        (
            self.inner,
            ScheduleTrace {
                events: self.events,
            },
        )
    }
}

impl<S: MemScheduler> MemScheduler for Recording<S, MemEvent> {
    fn next_event(&mut self, runnable: IdSet, step: u64) -> MemEvent {
        let event = self.inner.next_event(runnable, step);
        self.events.push(event);
        event
    }
}

impl<S: SemiSyncScheduler> SemiSyncScheduler for Recording<S, SemiSyncEvent> {
    fn next_event(&mut self, live: IdSet, step: u64) -> SemiSyncEvent {
        let event = self.inner.next_event(live, step);
        self.events.push(event);
        event
    }
}

impl<S: NetScheduler> NetScheduler for Recording<S, NetEvent> {
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], deliveries: u64) -> NetEvent {
        let event = self.inner.next_event(channels, deliveries);
        self.events.push(event);
        event
    }
}

/// Re-drives a recorded schedule: event `k` of the trace is returned at the
/// simulator's `k`-th scheduling decision. Past the end of the recording it
/// falls back to the first available option (first runnable process / first
/// busy channel), so a replay of a complete trace is exact and a replay of
/// a truncated one still terminates.
#[derive(Debug, Clone)]
pub struct ScheduleReplay<E> {
    events: Vec<E>,
    cursor: usize,
}

impl<E: Clone> ScheduleReplay<E> {
    /// Builds a replay scheduler from a captured trace.
    #[must_use]
    pub fn from_trace(trace: &ScheduleTrace<E>) -> Self {
        ScheduleReplay {
            events: trace.events.clone(),
            cursor: 0,
        }
    }

    fn next_recorded(&mut self) -> Option<E> {
        let event = self.events.get(self.cursor).cloned();
        self.cursor += 1;
        event
    }
}

impl<E: Clone> From<ScheduleTrace<E>> for ScheduleReplay<E> {
    fn from(trace: ScheduleTrace<E>) -> Self {
        ScheduleReplay {
            events: trace.events,
            cursor: 0,
        }
    }
}

impl MemScheduler for ScheduleReplay<MemEvent> {
    fn next_event(&mut self, runnable: IdSet, _step: u64) -> MemEvent {
        self.next_recorded().unwrap_or_else(|| {
            MemEvent::Step(runnable.iter().next().expect("some process is runnable"))
        })
    }
}

impl SemiSyncScheduler for ScheduleReplay<SemiSyncEvent> {
    fn next_event(&mut self, live: IdSet, _step: u64) -> SemiSyncEvent {
        self.next_recorded().unwrap_or_else(|| {
            SemiSyncEvent::Step(live.iter().next().expect("some process is live"))
        })
    }
}

impl NetScheduler for ScheduleReplay<NetEvent> {
    fn next_event(&mut self, channels: &[(ProcessId, ProcessId)], _deliveries: u64) -> NetEvent {
        self.next_recorded().unwrap_or_else(|| {
            let (from, to) = channels[0];
            NetEvent::Deliver { from, to }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::SystemSize;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn mem_events_round_trip_through_text() {
        let trace = ScheduleTrace::from_events(vec![
            MemEvent::Step(p(0)),
            MemEvent::Crash(p(2)),
            MemEvent::Step(p(1)),
        ]);
        let text = trace.to_string();
        assert_eq!(text, "rrfd-sched v1\nstep 0\ncrash 2\nstep 1\n");
        let back: ScheduleTrace<MemEvent> = text.parse().unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn net_events_round_trip_through_text() {
        let trace = ScheduleTrace::from_events(vec![
            NetEvent::Deliver {
                from: p(0),
                to: p(2),
            },
            NetEvent::Crash(p(1)),
        ]);
        let text = trace.to_string();
        assert_eq!(text, "rrfd-sched v1\ndeliver 0>2\ncrash 1\n");
        let back: ScheduleTrace<NetEvent> = text.parse().unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        assert!("".parse::<ScheduleTrace<MemEvent>>().is_err());
        assert!("bogus header\nstep 0\n"
            .parse::<ScheduleTrace<MemEvent>>()
            .is_err());
        let err = "rrfd-sched v1\nstep 0\nfly 3\n"
            .parse::<ScheduleTrace<MemEvent>>()
            .unwrap_err();
        assert_eq!(err.line, 3);
        assert!("rrfd-sched v1\ndeliver 0x2\n"
            .parse::<ScheduleTrace<NetEvent>>()
            .is_err());
        assert!("rrfd-sched v1\nstep 999\n"
            .parse::<ScheduleTrace<MemEvent>>()
            .is_err());
    }

    #[test]
    fn recording_then_replay_is_identity_on_shared_memory() {
        use crate::shared_mem::{Action, MemProcess, Observation, RandomScheduler, SharedMemSim};

        #[derive(Debug)]
        struct WriteReadDecide {
            me: ProcessId,
        }
        impl MemProcess<u64> for WriteReadDecide {
            type Output = Option<u64>;
            fn step(&mut self, obs: Observation<u64>) -> Action<u64, Option<u64>> {
                match obs {
                    Observation::Start => Action::Write {
                        bank: 0,
                        value: self.me.index() as u64 + 1,
                    },
                    Observation::Written => Action::Read {
                        bank: 0,
                        owner: ProcessId::new((self.me.index() + 1) % 3),
                    },
                    Observation::Value(v) => Action::Decide(v),
                    other => unreachable!("{other:?}"),
                }
            }
        }

        let n = SystemSize::new(3).unwrap();
        let sim = SharedMemSim::new(n, 1);
        let make = || {
            (0..3)
                .map(|i| WriteReadDecide { me: p(i) })
                .collect::<Vec<_>>()
        };

        for seed in 0..10u64 {
            let mut recording = Recording::new(RandomScheduler::new(seed, 1));
            let original = sim.run(make(), &mut recording).unwrap();
            let (_, trace) = recording.into_parts();

            // Replay from the parsed text form: text → trace → run.
            let reparsed: ScheduleTrace<MemEvent> = trace.to_string().parse().unwrap();
            assert_eq!(reparsed, trace);
            let mut replay = ScheduleReplay::from_trace(&reparsed);
            let replayed = sim.run(make(), &mut replay).unwrap();
            assert_eq!(replayed.outputs, original.outputs, "seed {seed}");
            assert_eq!(replayed.crashed, original.crashed, "seed {seed}");
            assert_eq!(replayed.steps, original.steps, "seed {seed}");
        }
    }

    #[test]
    fn recording_then_replay_is_identity_on_the_async_net() {
        use crate::async_net::{AsyncNetSim, AsyncProcess, Outbox, RandomNetScheduler};
        use rrfd_core::Control;

        struct Echo(ProcessId);
        impl AsyncProcess for Echo {
            type Msg = u64;
            type Output = u64;
            fn on_start(&mut self, out: &mut Outbox<u64>) {
                out.broadcast(self.0.index() as u64);
            }
            fn on_message(
                &mut self,
                _now: u64,
                _from: ProcessId,
                msg: u64,
                _out: &mut Outbox<u64>,
            ) -> Control<u64> {
                Control::Decide(msg)
            }
        }

        let n = SystemSize::new(4).unwrap();
        let sim = AsyncNetSim::new(n);
        let make = || n.processes().map(Echo).collect::<Vec<_>>();

        for seed in 0..10u64 {
            let mut recording = Recording::new(RandomNetScheduler::new(seed, 1));
            let original = sim.run(make(), &mut recording).unwrap();
            let (_, trace) = recording.into_parts();

            let mut replay = ScheduleReplay::from(trace);
            let replayed = sim.run(make(), &mut replay).unwrap();
            assert_eq!(replayed.outputs, original.outputs, "seed {seed}");
            assert_eq!(replayed.crashed, original.crashed, "seed {seed}");
            assert_eq!(replayed.deliveries, original.deliveries, "seed {seed}");
        }
    }

    #[test]
    fn recording_then_replay_is_identity_on_semi_sync() {
        use crate::semi_sync::{RandomSemiSync, SemiSyncProcess, SemiSyncSim};
        use rrfd_core::Control;

        /// Decides, after three steps, on the set of distinct senders heard.
        #[derive(Debug)]
        struct Listen {
            steps: u64,
            heard: IdSet,
            sent: bool,
        }
        impl SemiSyncProcess for Listen {
            type Msg = ();
            type Output = usize;
            fn step(
                &mut self,
                received: &[(ProcessId, std::sync::Arc<()>)],
            ) -> (Option<()>, Control<usize>) {
                self.steps += 1;
                for &(from, _) in received {
                    self.heard.insert(from);
                }
                let msg = (!self.sent).then(|| self.sent = true);
                if self.steps >= 3 {
                    (msg, Control::Decide(self.heard.len()))
                } else {
                    (msg, Control::Continue)
                }
            }
        }

        let n = SystemSize::new(3).unwrap();
        let sim = SemiSyncSim::new(n);
        let make = || {
            (0..3)
                .map(|_| Listen {
                    steps: 0,
                    heard: IdSet::empty(),
                    sent: false,
                })
                .collect::<Vec<_>>()
        };
        for seed in 0..10u64 {
            let mut recording = Recording::new(RandomSemiSync::new(seed, 1));
            let original = sim.run(make(), &mut recording).unwrap();
            let (_, trace) = recording.into_parts();

            let reparsed: ScheduleTrace<SemiSyncEvent> = trace.to_string().parse().unwrap();
            let mut replay = ScheduleReplay::from_trace(&reparsed);
            let replayed = sim.run(make(), &mut replay).unwrap();
            assert_eq!(replayed.outputs, original.outputs, "seed {seed}");
            assert_eq!(replayed.crashed, original.crashed, "seed {seed}");
        }
    }
}
