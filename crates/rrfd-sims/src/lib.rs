//! Classical *non-RRFD* system simulators — the substrates Section 2 of
//! the paper relates to the RRFD family.
//!
//! Each simulator models its system at the message/step level with its own
//! ground-truth fault semantics, independently of any predicate. The E1
//! extraction experiments then run real executions, read off the sets
//! `D(i,r)` exactly as the paper prescribes ("the set of processes from
//! which `p_i` failed to receive an r-round message"), and machine-check
//! the corresponding predicate from `rrfd-models`.
//!
//! * [`sync_net`] — lock-step synchronous message passing with
//!   send-omission and crash faults (§2 items 1, 2).
//! * [`async_net`] — event-driven asynchronous message passing with
//!   adversarial delivery order and crashes (§2 item 3); [`async_rounds`]
//!   layers communication-closed rounds on top (buffer-early /
//!   discard-late / wait-for-`n − f`).
//! * [`shared_mem`] — SWMR register banks and an atomic-snapshot object
//!   under an adversarial step scheduler (§2 items 4, 5).
//! * [`semi_sync`] — the Dolev-Dwork-Stockmeyer semi-synchronous model of
//!   §5 (atomic receive/broadcast steps, synchronous broadcast delivery).
//! * [`detector_s`] — the S-augmented asynchronous system of §2 item 6.
//! * [`explore`] — exhaustive schedule enumeration for small shared-memory
//!   instances (turns sampled tests into proofs-by-enumeration).
//! * [`explore_par`] — the work-distributing, pruned form of the same
//!   search: the schedule tree is split at a prefix depth into independent
//!   subtree jobs on `std::thread` workers, with converged-state
//!   memoization (via the [`digest`] seam) and opt-in process-id symmetry
//!   reduction.
//! * [`digest`] — canonical state encodings ([`digest::StateDigest`]) and
//!   the collision-safe dedup table backing the explorer's hash pruning.
//! * [`trace`] — schedule capture ([`trace::Recording`]) and deterministic
//!   replay ([`trace::ScheduleReplay`]) for the adversarial simulators, so
//!   any failing run — including every `explore` counterexample — is a
//!   serializable, re-runnable artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_net;
pub mod async_rounds;
pub mod detector_s;
pub mod digest;
pub mod explore;
pub mod explore_par;
pub mod instrument;
pub mod semi_sync;
pub mod shared_mem;
pub mod sync_net;
pub mod trace;
