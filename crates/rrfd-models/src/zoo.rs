//! The standard predicate zoo — every model family of the paper's §2,
//! instantiated as one boxed, thread-shareable family.
//!
//! This lives here (not in `rrfd-analyze`, which re-exports it for its
//! lattice computation) because live substrates need it too: the
//! conformance monitor (see [`crate::conformance`]) evaluates the whole
//! zoo against a running system, round by round.

use crate::predicates::{
    AntiSymmetric, AsyncResilient, Crash, DetectorS, EventuallyStrong, IdenticalViews,
    KUncertainty, SendOmission, Snapshot, SomeoneTrustedByAll, Swmr, SystemB,
};
use rrfd_core::{Round, RrfdPredicate, SystemSize};

/// A predicate boxed for use from worker threads: the element type of the
/// [`zoo`] family.
pub type SharedPredicate = Box<dyn RrfdPredicate + Send + Sync>;

/// The number of predicates [`zoo`] returns.
pub const ZOO_SIZE: usize = 13;

/// Strength rank of each zoo predicate, indexed by zoo position; lower =
/// stronger. The order is the implication out-degree in the committed
/// n = 3, f = 1 lattice (`EXPERIMENTS.md`, machine-checked to depth 3):
/// a predicate that implies more of the zoo constrains the adversary
/// more, so "strongest still satisfied" means "lowest rank not yet
/// violated". Ties (equal out-degree) break by zoo position, keeping the
/// rank a total order.
pub const ZOO_STRENGTH_RANK: [usize; ZOO_SIZE] = [
    0,  // Crash — implies 7 others
    1,  // SendOmission — 6
    2,  // Snapshot — 6 (tie, later zoo position)
    4,  // SWMR — 3
    10, // AsyncResilient — 0 (weakest tier)
    3,  // System B — 5
    7,  // DetectorS — 1
    8,  // EventuallyStrong — 1 (tie)
    5,  // IdenticalViews — 3 (tie)
    6,  // KUncertainty(1) — 3 (tie)
    9,  // KUncertainty(2) — 1 (tie)
    11, // SomeoneTrustedByAll (eq4) — 0 (tie)
    12, // AntiSymmetric — 0 (tie)
];

/// The standard predicate zoo the lattice is computed over: every model
/// family from the paper's Section 2 discussion, instantiated at system
/// size `n` with resilience `f` where the family takes one.
///
/// System B carries its own side conditions (`f_B < t`, `2t < n`), so it
/// is instantiated at the largest legal `t = ⌈n/2⌉ − 1` with
/// `f_B = min(f, t − 1)` — at the default `n = 3` that is `PB(0, 1)`.
///
/// # Panics
///
/// Panics when `f` is not a legal resilience for `n` (the individual
/// constructors check).
#[must_use]
pub fn zoo(n: SystemSize, f: usize) -> Vec<SharedPredicate> {
    let t = n.get().div_ceil(2) - 1; // largest t with 2t < n
    vec![
        Box::new(Crash::new(n, f)),
        Box::new(SendOmission::new(n, f)),
        Box::new(Snapshot::new(n, f)),
        Box::new(Swmr::new(n, f)),
        Box::new(AsyncResilient::new(n, f)),
        Box::new(SystemB::new(n, f.min(t.saturating_sub(1)), t)),
        Box::new(DetectorS::new(n)),
        Box::new(EventuallyStrong::new(n, f, Round::new(2))),
        Box::new(IdenticalViews::new(n)),
        Box::new(KUncertainty::new(n, 1)),
        Box::new(KUncertainty::new(n, 2)),
        Box::new(SomeoneTrustedByAll::new(n)),
        Box::new(AntiSymmetric::new(n)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_the_documented_size_and_distinct_names() {
        let family = zoo(SystemSize::new(3).expect("3 is a valid size"), 1);
        assert_eq!(family.len(), ZOO_SIZE);
        let mut names: Vec<String> = family.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ZOO_SIZE, "zoo names must be distinct");
    }

    #[test]
    fn strength_rank_is_a_permutation() {
        let mut ranks = ZOO_STRENGTH_RANK;
        ranks.sort_unstable();
        let expected: Vec<usize> = (0..ZOO_SIZE).collect();
        assert_eq!(ranks.to_vec(), expected);
    }
}
