//! The live RRFD predicate-conformance monitor.
//!
//! A run is only as good as the predicate its environment actually
//! delivered. The monitor watches a run's per-round suspicion sets
//! `D(i,r)` — equivalently its heard-of sets, since
//! `HO(i,r) = S ∖ D(i,r)` — and decides, incrementally, which of the
//! zoo's predicates the run still conforms to. Because every zoo
//! predicate is prefix-closed, a violated predicate stays violated:
//! each round costs at most one `admits` call per still-live predicate,
//! and the monitor's verdict after round `r` equals the offline answer
//! "does the predicate admit the pattern prefix of length `r`?" (the
//! differential suite at the workspace root checks exactly this
//! agreement on every substrate).
//!
//! A violation is not just a flag: [`ConformanceMonitor::certificate`]
//! converts it into a replayable [`RunTrace`] whose final round is the
//! violating one, so "this run left the crash model at round 7" ships
//! with the evidence that reproduces it.

use crate::zoo::{zoo, SharedPredicate, ZOO_STRENGTH_RANK};
use rrfd_core::{
    FaultPattern, IdSet, PatternViolation, Round, RoundFaults, RrfdPredicate, RunTrace, SystemSize,
    TraceBuilder, TraceOutcome,
};
use rrfd_obs::{names, Labels, Obs};

/// The status of one monitored predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateStatus {
    /// The predicate's diagnostic name.
    pub name: String,
    /// Strength rank (lower = stronger; see
    /// [`ZOO_STRENGTH_RANK`]). For non-zoo families this is the
    /// predicate's position.
    pub rank: usize,
    /// The first round the predicate rejected, or `None` while it still
    /// admits every observed round.
    pub first_violation: Option<Round>,
}

impl PredicateStatus {
    /// `true` while the predicate admits every observed round.
    #[must_use]
    pub fn satisfied(&self) -> bool {
        self.first_violation.is_none()
    }
}

/// A frozen conformance verdict: every predicate's status after some
/// number of observed rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceVerdict {
    /// Rounds observed when the verdict was taken.
    pub rounds_observed: u32,
    /// One status per monitored predicate, in family order.
    pub statuses: Vec<PredicateStatus>,
}

impl ConformanceVerdict {
    /// The strongest (lowest-rank) predicate still satisfied, if any.
    #[must_use]
    pub fn strongest_satisfied(&self) -> Option<&PredicateStatus> {
        self.statuses
            .iter()
            .filter(|s| s.satisfied())
            .min_by_key(|s| s.rank)
    }

    /// How many predicates have been violated so far.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.statuses.iter().filter(|s| !s.satisfied()).count()
    }
}

/// An online checker evaluating a predicate family against a live run,
/// one round of suspicions at a time.
pub struct ConformanceMonitor {
    predicates: Vec<SharedPredicate>,
    ranks: Vec<usize>,
    history: FaultPattern,
    /// Per predicate: the round it first rejected, plus that round's
    /// faults (kept for the certificate; the history also retains them,
    /// but a later monitor user must not need to know the round number
    /// to rebuild the witness).
    violations: Vec<Option<(Round, RoundFaults)>>,
}

impl std::fmt::Debug for ConformanceMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConformanceMonitor")
            .field("predicates", &self.predicates.len())
            .field("rounds_observed", &self.rounds_observed())
            .field("violations", &self.verdict().violations())
            .finish()
    }
}

impl ConformanceMonitor {
    /// A monitor over the full 13-predicate [`zoo`] at size `n`,
    /// resilience `f`, ranked by [`ZOO_STRENGTH_RANK`].
    ///
    /// # Panics
    ///
    /// Panics when `f` is not a legal resilience for `n` (the zoo
    /// constructors check).
    #[must_use]
    pub fn zoo(n: SystemSize, f: usize) -> Self {
        ConformanceMonitor::with_ranks(zoo(n, f), ZOO_STRENGTH_RANK.to_vec())
    }

    /// A monitor over an arbitrary predicate family, ranked by position
    /// (first = strongest).
    ///
    /// # Panics
    ///
    /// Panics when the family is empty or spans different system sizes.
    #[must_use]
    pub fn new(predicates: Vec<SharedPredicate>) -> Self {
        let ranks = (0..predicates.len()).collect();
        ConformanceMonitor::with_ranks(predicates, ranks)
    }

    fn with_ranks(predicates: Vec<SharedPredicate>, ranks: Vec<usize>) -> Self {
        assert!(
            !predicates.is_empty(),
            "conformance monitoring needs at least one predicate"
        );
        let n = predicates[0].system_size();
        assert!(
            predicates.iter().all(|p| p.system_size() == n),
            "monitored predicates must share a system size"
        );
        assert_eq!(ranks.len(), predicates.len());
        let violations = vec![None; predicates.len()];
        ConformanceMonitor {
            predicates,
            ranks,
            history: FaultPattern::new(n),
            violations,
        }
    }

    /// The system size being monitored.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.history.system_size()
    }

    /// Rounds observed so far.
    #[must_use]
    pub fn rounds_observed(&self) -> u32 {
        self.history.rounds() as u32
    }

    /// Feeds one round of suspicions. Every still-live predicate is
    /// asked whether the round may extend the history; prefix-closedness
    /// makes re-checking violated predicates pointless, so they are
    /// skipped. The round joins the history either way — the monitor
    /// tracks the run that happened, not the run some model wanted.
    pub fn observe(&mut self, round: &RoundFaults) {
        let round_no = Round::new(self.history.rounds() as u32 + 1);
        for (idx, predicate) in self.predicates.iter().enumerate() {
            if self.violations[idx].is_some() {
                continue;
            }
            if !predicate.admits(&self.history, round) {
                self.violations[idx] = Some((round_no, round.clone()));
            }
        }
        self.history.push(round.clone());
    }

    /// The current verdict.
    #[must_use]
    pub fn verdict(&self) -> ConformanceVerdict {
        ConformanceVerdict {
            rounds_observed: self.rounds_observed(),
            statuses: self
                .predicates
                .iter()
                .enumerate()
                .map(|(idx, p)| PredicateStatus {
                    name: p.name(),
                    rank: self.ranks[idx],
                    first_violation: self.violations[idx].as_ref().map(|(r, _)| *r),
                })
                .collect(),
        }
    }

    /// A replayable certificate for predicate `idx`'s violation, or
    /// `None` while it is still satisfied: every round before the
    /// violation as a normal round (with the covering-maximal
    /// `HO(i,r) = S ∖ D(i,r)` delivery), the violating round marked as
    /// such, and the outcome naming the rejecting predicate. Re-driving
    /// the trace against the same predicate reproduces the rejection at
    /// the recorded round.
    #[must_use]
    pub fn certificate(&self, idx: usize) -> Option<RunTrace> {
        let (round_no, faults) = self.violations.get(idx)?.as_ref()?;
        let n = self.system_size();
        let universe = IdSet::universe(n);
        let mut builder = TraceBuilder::new(n);
        for (r, prefix_faults) in self.history.iter() {
            if r >= *round_no {
                break;
            }
            let heard = n
                .processes()
                .map(|i| universe - prefix_faults.of(i))
                .collect();
            builder.record_round(prefix_faults, heard);
        }
        builder.record_violating_round(faults.clone());
        Some(builder.finish(TraceOutcome::Violation(
            PatternViolation::PredicateRejected {
                predicate: self.predicates[idx].name(),
                round: *round_no,
            },
        )))
    }

    /// Publishes the monitor's state as `rrfd_conformance_*` metrics.
    /// The predicate is identified by its family index carried in the
    /// `process` label — a documented, bounded reuse of the label schema
    /// (the zoo has 13 members; the label was sized for process counts).
    pub fn record(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.add(
            names::CONF_ROUNDS,
            Labels::GLOBAL,
            u64::from(self.rounds_observed()),
        );
        let checks: u64 = self
            .violations
            .iter()
            .map(|v| match v {
                // A violated predicate was checked once per round up to
                // and including its violating round…
                Some((r, _)) => u64::from(r.get()),
                // …a live one, every round.
                None => u64::from(self.rounds_observed()),
            })
            .sum();
        obs.add(names::CONF_CHECKS, Labels::GLOBAL, checks);
        for (idx, violation) in self.violations.iter().enumerate() {
            let labels = Labels::process(idx);
            match violation {
                Some((round, _)) => {
                    obs.gauge(names::CONF_SATISFIED, labels, 0);
                    obs.gauge(names::CONF_FIRST_VIOLATION, labels, i64::from(round.get()));
                }
                None => obs.gauge(names::CONF_SATISFIED, labels, 1),
            }
        }
        let strongest = self
            .verdict()
            .strongest_satisfied()
            .map_or(-1, |s| s.rank as i64);
        obs.gauge(names::CONF_STRONGEST, Labels::GLOBAL, strongest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::ReplayDetector;
    use rrfd_core::{ProcessId, RrfdPredicate};

    fn n3() -> SystemSize {
        SystemSize::new(3).expect("3 is a valid size")
    }

    fn suspect(by: usize, who: usize) -> RoundFaults {
        let mut rf = RoundFaults::none(n3());
        rf.set(ProcessId::new(by), IdSet::singleton(ProcessId::new(who)));
        rf
    }

    #[test]
    fn quiet_rounds_satisfy_the_whole_zoo() {
        let mut mon = ConformanceMonitor::zoo(n3(), 1);
        for _ in 0..4 {
            mon.observe(&RoundFaults::none(n3()));
        }
        let verdict = mon.verdict();
        assert_eq!(verdict.rounds_observed, 4);
        assert_eq!(verdict.violations(), 0);
        let strongest = verdict.strongest_satisfied().expect("everything holds");
        assert_eq!(strongest.rank, 0, "the crash model is the strongest");
    }

    #[test]
    fn online_verdict_matches_offline_prefix_checking() {
        // A pattern that leaves the crash model: p0 suspects p2, then
        // stops suspecting it (crash suspicions are permanent).
        let rounds = vec![suspect(0, 2), RoundFaults::none(n3()), suspect(1, 0)];
        let mut mon = ConformanceMonitor::zoo(n3(), 1);
        for rf in &rounds {
            mon.observe(rf);
        }
        let verdict = mon.verdict();

        // Offline: replay each predicate over pattern prefixes.
        let family = zoo(n3(), 1);
        for (idx, predicate) in family.iter().enumerate() {
            let mut prefix = FaultPattern::new(n3());
            let mut offline_first: Option<Round> = None;
            for (r, rf) in rounds.iter().enumerate() {
                if offline_first.is_none() && !predicate.admits(&prefix, rf) {
                    offline_first = Some(Round::new(r as u32 + 1));
                }
                prefix.push(rf.clone());
            }
            assert_eq!(
                verdict.statuses[idx].first_violation,
                offline_first,
                "{}",
                predicate.name()
            );
        }
        // And the run did leave at least one model.
        assert!(verdict.violations() > 0);
    }

    #[test]
    fn certificates_replay_to_the_recorded_rejection() {
        let mut mon = ConformanceMonitor::zoo(n3(), 1);
        mon.observe(&suspect(0, 2));
        mon.observe(&RoundFaults::none(n3()));
        mon.observe(&suspect(0, 2)); // resurrection-then-resuspicion
        let verdict = mon.verdict();
        let family = zoo(n3(), 1);
        for (idx, status) in verdict.statuses.iter().enumerate() {
            let Some(round) = status.first_violation else {
                assert!(mon.certificate(idx).is_none());
                continue;
            };
            let trace = mon.certificate(idx).expect("violated ⇒ certificate");
            // The trace's pattern is exactly the history prefix through
            // the violating round, and the predicate rejects it there.
            let pattern = trace.pattern();
            assert_eq!(pattern.rounds() as u32, round.get());
            assert!(!family[idx].admits_pattern(&pattern));
            // The recorded moves replay deterministically.
            let replay = ReplayDetector::from_trace(&trace);
            let _ = replay; // construction validates the trace shape
            let text = trace.to_string();
            let reparsed: RunTrace = text.parse().expect("traces round-trip");
            assert_eq!(reparsed, trace);
        }
    }

    #[test]
    fn metrics_carry_strongest_rank_and_violation_rounds() {
        let mut mon = ConformanceMonitor::zoo(n3(), 1);
        mon.observe(&suspect(0, 2));
        mon.observe(&RoundFaults::none(n3()));
        let obs = Obs::logical();
        mon.record(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total(names::CONF_ROUNDS), 2);
        assert!(snap.counter_total(names::CONF_CHECKS) > 0);
        // Crash (zoo index 0) is violated at round 2 (the suspicion of
        // p2 was dropped), so its satisfied gauge is 0 with the round
        // recorded; the strongest-rank gauge reflects whatever survives.
        let verdict = mon.verdict();
        for (idx, status) in verdict.statuses.iter().enumerate() {
            let labels = Labels::process(idx);
            match status.first_violation {
                Some(round) => {
                    assert_eq!(
                        snap.get(names::CONF_SATISFIED, labels),
                        Some(&rrfd_obs::MetricValue::Gauge(0))
                    );
                    assert_eq!(
                        snap.get(names::CONF_FIRST_VIOLATION, labels),
                        Some(&rrfd_obs::MetricValue::Gauge(i64::from(round.get())))
                    );
                }
                None => {
                    assert_eq!(
                        snap.get(names::CONF_SATISFIED, labels),
                        Some(&rrfd_obs::MetricValue::Gauge(1))
                    );
                }
            }
        }
        let expected = verdict.strongest_satisfied().map_or(-1, |s| s.rank as i64);
        assert_eq!(
            snap.get(names::CONF_STRONGEST, Labels::GLOBAL),
            Some(&rrfd_obs::MetricValue::Gauge(expected))
        );
    }

    #[test]
    fn noop_recording_is_free_and_silent() {
        let mut mon = ConformanceMonitor::zoo(n3(), 1);
        mon.observe(&RoundFaults::none(n3()));
        let obs = Obs::noop();
        mon.record(&obs);
        assert!(obs.snapshot().entries().is_empty());
    }
}
