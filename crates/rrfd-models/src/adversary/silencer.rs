//! The lower-bound adversary of Corollaries 4.2/4.4.
//!
//! Chaudhuri-Herlihy-Lynch-Tuttle: k-set agreement in a synchronous system
//! with at most `f` crash faults needs at least `⌊f/k⌋ + 1` rounds. The
//! classical hard execution crashes `k` processes per round, arranged in `k`
//! disjoint *silencing chains*: chain `j` starts at the process holding the
//! `j`-th smallest input and, each round, the current chain head crashes
//! while delivering its round message to exactly one fresh process — the
//! next link. After `R = ⌊f/k⌋` rounds each chain's value is known to
//! exactly one live process (the chain *tip*) and to nobody else, so any
//! protocol that must decide by round `R` is forced into `k + 1` distinct
//! decisions among live processes.
//!
//! [`SilencingCrash`] produces exactly this fault pattern, phrased as RRFD
//! suspicion sets that satisfy the crash predicate
//! [`Crash`](crate::predicates::Crash). Experiment E9 runs flood-set against
//! it at budgets `R` (violation) and `R + 1` (correct).

use rrfd_core::{FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, SystemSize};

/// The chain-silencing crash adversary for the `⌊f/k⌋ + 1` lower bound.
#[derive(Debug, Clone, Copy)]
pub struct SilencingCrash {
    n: SystemSize,
    k: usize,
    rounds: usize,
}

impl SilencingCrash {
    /// Creates the adversary for `n` processes, failure budget `f`, and
    /// agreement parameter `k`. It silences for `⌊f/k⌋` rounds, crashing
    /// `k ⌊f/k⌋ ≤ f` processes in total.
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 1`, `f ≥ k` (otherwise there is nothing to
    /// silence — the bound is trivially one round), and
    /// `n ≥ k(⌊f/k⌋ + 1) + 1` (chains, tips, and at least one bystander
    /// must be disjoint).
    #[must_use]
    pub fn new(n: SystemSize, f: usize, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(f >= k, "silencing needs f ≥ k");
        let rounds = f / k;
        assert!(
            n.get() > k * (rounds + 1),
            "need n ≥ k(⌊f/k⌋+1)+1 = {} processes, got {}",
            k * (rounds + 1) + 1,
            n.get()
        );
        SilencingCrash { n, k, rounds }
    }

    /// Number of silenced rounds `R = ⌊f/k⌋`.
    #[must_use]
    pub fn silenced_rounds(&self) -> usize {
        self.rounds
    }

    /// The processes that crash over the whole schedule:
    /// `{0, …, k·R − 1}`.
    #[must_use]
    pub fn crashed(&self) -> IdSet {
        (0..self.k * self.rounds).map(ProcessId::new).collect()
    }

    /// The tip of chain `j`: the unique live process that learns chain
    /// `j`'s value.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ k`.
    #[must_use]
    pub fn tip(&self, j: usize) -> ProcessId {
        assert!(j < self.k, "chain index out of range");
        ProcessId::new(self.rounds * self.k + j)
    }

    /// Chain member at depth `d` of chain `j` (depth 0 is the origin).
    fn member(&self, j: usize, d: usize) -> ProcessId {
        ProcessId::new(d * self.k + j)
    }

    /// The process that receives the round-`r` message of the chain-`j`
    /// head crashing at round `r` (1-based): the next link, or the tip.
    fn receiver(&self, j: usize, r: usize) -> ProcessId {
        ProcessId::new(r * self.k + j)
    }
}

impl FaultDetector for SilencingCrash {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        let r = round.get() as usize;
        let previously_crashed: IdSet = (0..self.k * (r - 1).min(self.rounds))
            .map(ProcessId::new)
            .collect();

        if r > self.rounds {
            // Silencing is over: every crash is universal knowledge.
            return RoundFaults::from_sets(self.n, vec![previously_crashed; self.n.get()]);
        }

        // Crash the round-r chain heads; each delivers only to its receiver
        // (and, vacuously, to itself — a process always "has" its own
        // message, and excluding it keeps the self-trust clause intact).
        let sets = self
            .n
            .processes()
            .map(|i| {
                let mut d = previously_crashed;
                for j in 0..self.k {
                    let head = self.member(j, r - 1);
                    if i != self.receiver(j, r) && i != head {
                        d.insert(head);
                    }
                }
                d
            })
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::Crash;
    use rrfd_core::validate_round;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn drive(adv: &mut SilencingCrash, rounds: u32) -> FaultPattern {
        let model = Crash::new(adv.system_size(), adv.k * adv.rounds);
        let mut history = FaultPattern::new(adv.system_size());
        for r in 1..=rounds {
            let round = adv.next_round(Round::new(r), &history);
            validate_round(&model, &history, &round)
                .unwrap_or_else(|e| panic!("illegal silencer round {r}: {e}"));
            history.push(round);
        }
        history
    }

    #[test]
    fn schedule_is_crash_legal() {
        // n=10, f=4, k=2 → R=2, crashes {0..3}, tips {4,5}.
        let mut adv = SilencingCrash::new(n(10), 4, 2);
        let history = drive(&mut adv, 5);
        assert_eq!(history.cumulative_union(), adv.crashed());
        assert_eq!(adv.crashed().len(), 4);
    }

    #[test]
    fn chain_head_message_reaches_only_the_next_link() {
        let mut adv = SilencingCrash::new(n(10), 4, 2);
        let history = drive(&mut adv, 2);
        // Round 1: heads are p0 (chain 0) and p1 (chain 1); receivers p2, p3.
        let r1 = history.round(Round::new(1)).unwrap();
        for i in n(10).processes() {
            let d = r1.of(i);
            let misses_p0 = d.contains(ProcessId::new(0));
            if i == ProcessId::new(2) || i == ProcessId::new(0) {
                assert!(!misses_p0, "{i} must hear the chain-0 head");
            } else {
                assert!(misses_p0, "{i} must not hear the chain-0 head");
            }
        }
    }

    #[test]
    fn k1_chain_matches_the_classic_construction() {
        // n=6, f=3, k=1 → R=3: p0→p1→p2 crash, tip p3.
        let adv = SilencingCrash::new(n(6), 3, 1);
        assert_eq!(adv.silenced_rounds(), 3);
        assert_eq!(adv.tip(0), ProcessId::new(3));
        assert_eq!(adv.crashed().len(), 3);
    }

    #[test]
    fn post_silencing_rounds_are_stable() {
        let mut adv = SilencingCrash::new(n(10), 4, 2);
        let history = drive(&mut adv, 6);
        let r5 = history.round(Round::new(5)).unwrap();
        let r6 = history.round(Round::new(6)).unwrap();
        assert_eq!(r5, r6);
        for i in n(10).processes() {
            assert_eq!(r5.of(i), adv.crashed());
        }
    }

    #[test]
    #[should_panic(expected = "f ≥ k")]
    fn too_small_f_is_rejected() {
        let _ = SilencingCrash::new(n(10), 1, 2);
    }

    #[test]
    #[should_panic(expected = "need n ≥")]
    fn too_small_n_is_rejected() {
        let _ = SilencingCrash::new(n(5), 4, 2);
    }
}
