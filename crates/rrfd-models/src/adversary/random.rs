//! Seeded random adversaries with constructive per-predicate samplers.

use crate::predicates::{
    AsyncResilient, Crash, DetectorS, IdenticalViews, KUncertainty, SendOmission, Snapshot, Swmr,
    SystemB,
};
use rand::rngs::StdRng;
use rand::seq::{IteratorRandom, SliceRandom};
use rand::{Rng, SeedableRng};
use rrfd_core::{
    FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, RrfdPredicate, SystemSize,
};

/// A predicate that knows how to *generate* legal rounds, not just check
/// them.
///
/// Samplers must be constructive: every produced round satisfies the
/// predicate by construction (the engine re-validates anyway). They should
/// also cover the predicate's behaviours broadly — e.g. the crash sampler
/// sometimes crashes nobody, sometimes several processes at once, and
/// staggers which processes notice first.
pub trait SampleModel: RrfdPredicate {
    /// Produces one legal round extending `history`.
    fn sample_round(&self, rng: &mut StdRng, history: &FaultPattern) -> RoundFaults;
}

/// A [`FaultDetector`] that plays uniformly-random legal moves for any
/// [`SampleModel`], reproducibly from a seed.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultDetector, FaultPattern, Round, RrfdPredicate, SystemSize};
/// use rrfd_models::adversary::RandomAdversary;
/// use rrfd_models::predicates::AsyncResilient;
///
/// let n = SystemSize::new(6).unwrap();
/// let model = AsyncResilient::new(n, 2);
/// let mut adv = RandomAdversary::new(model, 42);
/// let mut history = FaultPattern::new(n);
/// for r in 1..=10 {
///     let round = adv.next_round(Round::new(r), &history);
///     assert!(model.admits(&history, &round));
///     history.push(round);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomAdversary<M> {
    model: M,
    rng: StdRng,
}

impl<M: SampleModel> RandomAdversary<M> {
    /// Creates an adversary for `model`, deterministic in `seed`.
    #[must_use]
    pub fn new(model: M, seed: u64) -> Self {
        RandomAdversary {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The model being played.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: SampleModel> FaultDetector for RandomAdversary<M> {
    fn system_size(&self) -> SystemSize {
        self.model.system_size()
    }

    fn next_round(&mut self, _round: Round, history: &FaultPattern) -> RoundFaults {
        self.model.sample_round(&mut self.rng, history)
    }
}

/// Uniformly chooses a subset of `from` with at most `max_size` members
/// (the size itself is uniform in `0..=min(max_size, |from|)`).
fn random_subset(rng: &mut StdRng, from: IdSet, max_size: usize) -> IdSet {
    let cap = max_size.min(from.len());
    let size = rng.gen_range(0..=cap);
    from.iter().choose_multiple(rng, size).into_iter().collect()
}

impl SampleModel for AsyncResilient {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let universe = IdSet::universe(n);
        let sets = n
            .processes()
            .map(|_| random_subset(rng, universe, self.f()))
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for SendOmission {
    fn sample_round(&self, rng: &mut StdRng, history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let pool = history.cumulative_union();
        let budget = self.f().saturating_sub(pool.len());
        let fresh = random_subset(rng, pool.complement(n), budget);
        let allowed = pool.union(fresh);
        let sets = n
            .processes()
            .map(|i| {
                // Self-suspicion only for previously-suspected processes.
                let candidates = if pool.contains(i) {
                    allowed
                } else {
                    allowed - IdSet::singleton(i)
                };
                random_subset(rng, candidates, candidates.len())
            })
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for Crash {
    fn sample_round(&self, rng: &mut StdRng, history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let crashed = history.cumulative_union();
        let mandatory = history.last().map_or(IdSet::empty(), RoundFaults::union);
        let budget = self.f().saturating_sub(crashed.len());
        let fresh = random_subset(rng, crashed.complement(n), budget);
        let optional = crashed.union(fresh) - mandatory;
        let sets = n
            .processes()
            .map(|i| {
                let extra_pool = if crashed.contains(i) {
                    optional
                } else {
                    optional - IdSet::singleton(i)
                };
                mandatory | random_subset(rng, extra_pool, extra_pool.len())
            })
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for Swmr {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let star = ProcessId::new(rng.gen_range(0..n.get()));
        let pool = IdSet::universe(n) - IdSet::singleton(star);
        let sets = n
            .processes()
            .map(|_| random_subset(rng, pool, self.f()))
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for Snapshot {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        // Build a chain ∅ = S_0 ⊂ S_1 ⊂ … ⊂ S_m of missed-sets, |S_m| ≤ f.
        let missed = random_subset(rng, IdSet::universe(n), self.f());
        let mut order: Vec<ProcessId> = missed.iter().collect();
        order.shuffle(rng);
        // chain[l] = first l elements of the order.
        let chain: Vec<IdSet> = (0..=order.len())
            .map(|l| order[..l].iter().copied().collect())
            .collect();
        // first_containing[i] = smallest l with i ∈ S_l (l = position+1).
        let sets = n
            .processes()
            .map(|i| {
                let limit = order
                    .iter()
                    .position(|&p| p == i)
                    .map_or(chain.len(), |pos| pos + 1);
                chain[rng.gen_range(0..limit)]
            })
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for DetectorS {
    fn sample_round(&self, rng: &mut StdRng, history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        // The immortal is the least never-suspected process; it never
        // changes because we never suspect it.
        let immortal = history
            .cumulative_union()
            .complement(n)
            .min()
            .expect("P6 guarantees a never-suspected process");
        let pool = IdSet::universe(n) - IdSet::singleton(immortal);
        let sets = n
            .processes()
            .map(|_| random_subset(rng, pool, pool.len()))
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for KUncertainty {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let universe = IdSet::universe(n);
        // Unanimous base B plus a contested set U with |U| ≤ k−1 and
        // |B ∪ U| < n, so no D(i,r) can cover the universe.
        let base = random_subset(rng, universe, n.get().saturating_sub(self.k()));
        let contested_pool = universe - base;
        let headroom = (n.get() - 1).saturating_sub(base.len());
        let contested = random_subset(rng, contested_pool, (self.k() - 1).min(headroom));
        let sets = n
            .processes()
            .map(|_| base | random_subset(rng, contested, contested.len()))
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for crate::predicates::EventuallyStrong {
    fn sample_round(&self, rng: &mut StdRng, history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let universe = IdSet::universe(n);
        let this_round = history.rounds() as u32 + 1;
        let pool = if this_round <= self.stabilization().get() {
            universe
        } else {
            // Keep the least surviving candidate immortal forever.
            let immortal = self
                .immortal_candidates(history)
                .min()
                .expect("◊S guarantees a surviving candidate");
            universe - IdSet::singleton(immortal)
        };
        let sets = n
            .processes()
            .map(|_| random_subset(rng, pool, self.f()))
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for crate::predicates::AntiSymmetric {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let mut sets = vec![IdSet::empty(); n.get()];
        // For each unordered pair, pick one of: no miss, i misses j, or
        // j misses i — never both, and never a self-miss.
        for i in 0..n.get() {
            for j in (i + 1)..n.get() {
                match rng.gen_range(0..3u8) {
                    1 => {
                        sets[i].insert(ProcessId::new(j));
                    }
                    2 => {
                        sets[j].insert(ProcessId::new(i));
                    }
                    _ => {}
                }
            }
        }
        RoundFaults::from_sets(n, sets)
    }
}

impl SampleModel for IdenticalViews {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let shared = random_subset(rng, IdSet::universe(n), n.get() - 1);
        RoundFaults::from_sets(n, vec![shared; n.get()])
    }
}

impl SampleModel for SystemB {
    fn sample_round(&self, rng: &mut StdRng, _history: &FaultPattern) -> RoundFaults {
        let n = self.system_size();
        let universe = IdSet::universe(n);
        let slow = random_subset(rng, universe, self.t());
        let sets = n
            .processes()
            .map(|i| {
                let bound = if slow.contains(i) { self.t() } else { self.f() };
                random_subset(rng, universe, bound)
            })
            .collect();
        RoundFaults::from_sets(n, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples `rounds` rounds from `model` under several seeds and checks
    /// every round against the model itself (constructive correctness).
    fn assert_sampler_sound<M: SampleModel + Clone>(model: M, rounds: u32) {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let mut adv = RandomAdversary::new(model.clone(), seed);
            let mut history = FaultPattern::new(model.system_size());
            for r in 1..=rounds {
                let round = adv.next_round(Round::new(r), &history);
                assert!(
                    rrfd_core::validate_round(&model, &history, &round).is_ok(),
                    "sampler for {} produced an illegal round {r} under seed {seed}: {round:?}",
                    model.name()
                );
                history.push(round);
            }
        }
    }

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn async_resilient_sampler_is_sound() {
        assert_sampler_sound(AsyncResilient::new(n(6), 2), 30);
        assert_sampler_sound(AsyncResilient::new(n(6), 0), 10);
        assert_sampler_sound(AsyncResilient::new(n(6), 5), 30);
    }

    #[test]
    fn send_omission_sampler_is_sound() {
        assert_sampler_sound(SendOmission::new(n(6), 3), 30);
        assert_sampler_sound(SendOmission::new(n(6), 0), 10);
    }

    #[test]
    fn crash_sampler_is_sound() {
        assert_sampler_sound(Crash::new(n(6), 3), 30);
        assert_sampler_sound(Crash::new(n(6), 5), 30);
    }

    #[test]
    fn swmr_sampler_is_sound() {
        assert_sampler_sound(Swmr::new(n(6), 2), 30);
    }

    #[test]
    fn snapshot_sampler_is_sound() {
        assert_sampler_sound(Snapshot::new(n(6), 3), 30);
        assert_sampler_sound(Snapshot::new(n(8), 7), 30);
    }

    #[test]
    fn detector_s_sampler_is_sound() {
        assert_sampler_sound(DetectorS::new(n(6)), 30);
        assert_sampler_sound(DetectorS::new(n(1)), 5);
    }

    #[test]
    fn eventually_strong_sampler_is_sound() {
        use crate::predicates::EventuallyStrong;
        use rrfd_core::Round;
        assert_sampler_sound(EventuallyStrong::new(n(7), 3, Round::new(4)), 20);
        assert_sampler_sound(EventuallyStrong::new(n(5), 1, Round::new(1)), 15);
    }

    #[test]
    fn antisymmetric_sampler_is_sound() {
        use crate::predicates::AntiSymmetric;
        assert_sampler_sound(AntiSymmetric::new(n(6)), 25);
    }

    #[test]
    fn k_uncertainty_sampler_is_sound() {
        assert_sampler_sound(KUncertainty::new(n(6), 1), 30);
        assert_sampler_sound(KUncertainty::new(n(6), 3), 30);
        assert_sampler_sound(KUncertainty::new(n(6), 5), 30);
    }

    #[test]
    fn identical_views_sampler_is_sound() {
        assert_sampler_sound(IdenticalViews::new(n(6)), 30);
    }

    #[test]
    fn system_b_sampler_is_sound() {
        assert_sampler_sound(SystemB::new(n(7), 1, 3), 30);
    }

    #[test]
    fn samplers_are_deterministic_in_the_seed() {
        let model = Crash::new(n(6), 3);
        let run = |seed| {
            let mut adv = RandomAdversary::new(model, seed);
            let mut history = FaultPattern::new(n(6));
            for r in 1..=10 {
                let round = adv.next_round(Round::new(r), &history);
                history.push(round);
            }
            format!("{history:?}")
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn samplers_actually_exercise_faults() {
        // A sampler that always returns ∅ would be trivially sound; make
        // sure suspicion actually happens under at least one seed.
        let model = AsyncResilient::new(n(8), 3);
        let mut adv = RandomAdversary::new(model, 99);
        let mut history = FaultPattern::new(n(8));
        let mut suspicions = 0usize;
        for r in 1..=20 {
            let round = adv.next_round(Round::new(r), &history);
            suspicions += round.union().len();
            history.push(round);
        }
        assert!(suspicions > 0, "random adversary never suspected anyone");
    }
}
