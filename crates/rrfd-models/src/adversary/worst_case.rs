//! Targeted worst-case adversaries beyond the chain silencer: detectors
//! built to reach the *boundary* of what their model allows.

use rrfd_core::{FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, SystemSize};

/// The Theorem 3.1 tightness adversary: spreads one-round k-set decisions
/// over exactly `k` distinct values.
///
/// Round 1 assigns `D(i,1) = {p_0, …, p_{(i mod k)−1}}`: the uncertainty
/// set is `{p_0, …, p_{k−2}}` (size `k − 1 < k`, legal for `Pk`), and the
/// lowest-unsuspected rule lands process `i` on `p_{i mod k}` — `k`
/// distinct origins, the predicate's worst case. Later rounds are quiet.
#[derive(Debug, Clone, Copy)]
pub struct SpreadKUncertainty {
    n: SystemSize,
    k: usize,
}

impl SpreadKUncertainty {
    /// Creates the adversary for agreement parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < n`.
    #[must_use]
    pub fn new(n: SystemSize, k: usize) -> Self {
        assert!(k >= 1 && k < n.get(), "need 1 ≤ k < n");
        SpreadKUncertainty { n, k }
    }
}

impl FaultDetector for SpreadKUncertainty {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        if round.get() > 1 {
            return RoundFaults::none(self.n);
        }
        let sets = (0..self.n.get())
            .map(|i| (0..(i % self.k)).map(ProcessId::new).collect())
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

/// Crashes exactly `f_actual` processes, one per round (fully silenced
/// from their crash round on), then goes quiet — the schedule that pins
/// early-stopping consensus to its `f′`-dependent round count.
#[derive(Debug, Clone, Copy)]
pub struct StaggeredCrash {
    n: SystemSize,
    f_actual: usize,
}

impl StaggeredCrash {
    /// Creates the adversary crashing `p_0, …, p_{f_actual−1}` in rounds
    /// `1, …, f_actual`.
    ///
    /// # Panics
    ///
    /// Panics unless `f_actual < n`.
    #[must_use]
    pub fn new(n: SystemSize, f_actual: usize) -> Self {
        assert!(f_actual < n.get(), "at least one process must survive");
        StaggeredCrash { n, f_actual }
    }

    /// The number of processes that actually crash.
    #[must_use]
    pub fn actual_failures(&self) -> usize {
        self.f_actual
    }
}

impl FaultDetector for StaggeredCrash {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        let r = round.get() as usize;
        let crashed_before: IdSet = (0..(r - 1).min(self.f_actual))
            .map(ProcessId::new)
            .collect();
        let sets = self
            .n
            .processes()
            .map(|i| {
                let mut d = crashed_before;
                if r <= self.f_actual {
                    let head = ProcessId::new(r - 1);
                    if i != head {
                        d.insert(head);
                    }
                }
                d
            })
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

/// The partition adversary for the plain asynchronous model (eq. 3 with
/// `2f ≥ n`): splits the system into two halves that never hear each
/// other — the "network-partition problem" §2 item 4's eq. 4 is designed
/// to rule out.
///
/// Legal under [`AsyncResilient`](crate::predicates::AsyncResilient) with
/// `f ≥ ⌈n/2⌉`, and *illegal* under eq. 4 (every process is suspected by
/// someone) — which is the point.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    n: SystemSize,
}

impl Partition {
    /// Creates the half/half partition adversary.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2`.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        assert!(n.get() >= 2, "a partition needs two sides");
        Partition { n }
    }

    /// The lower half `{p_0, …, p_{⌈n/2⌉−1}}`.
    #[must_use]
    pub fn lower(&self) -> IdSet {
        (0..self.n.get().div_ceil(2)).map(ProcessId::new).collect()
    }

    /// The upper half.
    #[must_use]
    pub fn upper(&self) -> IdSet {
        self.lower().complement(self.n)
    }
}

impl FaultDetector for Partition {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, _round: Round, _history: &FaultPattern) -> RoundFaults {
        let lower = self.lower();
        let upper = self.upper();
        let sets = self
            .n
            .processes()
            .map(|i| if lower.contains(i) { upper } else { lower })
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{AsyncResilient, Crash, KUncertainty, SomeoneTrustedByAll};
    use rrfd_core::{validate_round, RrfdPredicate};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn spread_is_pk_legal_and_maximally_uncertain() {
        for &(nv, k) in &[(4usize, 2usize), (8, 4), (10, 5)] {
            let size = n(nv);
            let mut adv = SpreadKUncertainty::new(size, k);
            let h = FaultPattern::new(size);
            let round = adv.next_round(Round::new(1), &h);
            validate_round(&KUncertainty::new(size, k), &h, &round).unwrap();
            assert_eq!(round.uncertainty().len(), k - 1, "boundary not reached");
        }
    }

    #[test]
    fn staggered_crash_is_crash_legal() {
        let size = n(8);
        let mut adv = StaggeredCrash::new(size, 3);
        let model = Crash::new(size, 3);
        let mut h = FaultPattern::new(size);
        for r in 1..=6 {
            let round = adv.next_round(Round::new(r), &h);
            validate_round(&model, &h, &round).unwrap_or_else(|e| panic!("round {r}: {e}"));
            h.push(round);
        }
        assert_eq!(h.cumulative_union().len(), 3);
    }

    #[test]
    fn partition_is_async_legal_but_not_eq4() {
        let size = n(6);
        let mut adv = Partition::new(size);
        let h = FaultPattern::new(size);
        let round = adv.next_round(Round::new(1), &h);
        // Legal under eq. 3 once f reaches half the system…
        assert!(AsyncResilient::new(size, 3).admits(&h, &round));
        assert!(!AsyncResilient::new(size, 2).admits(&h, &round));
        // …but eq. 4 rejects it: everyone is suspected by the other side.
        assert!(!SomeoneTrustedByAll::new(size).admits(&h, &round));
    }

    #[test]
    fn partition_halves_cover_the_universe() {
        for nv in [2usize, 5, 9] {
            let size = n(nv);
            let adv = Partition::new(size);
            assert_eq!(adv.lower() | adv.upper(), IdSet::universe(size));
            assert!(adv.lower().is_disjoint(adv.upper()));
        }
    }

    #[test]
    fn partition_breaks_one_round_agreement_shapewise() {
        // Each side decides its own minimum: two sides, two values — the
        // concrete consensus failure eq. 4 exists to exclude.
        use rrfd_core::{AnyPattern, Control, Delivery, Engine, RoundProtocol};

        struct MinHeard(u64);
        impl RoundProtocol for MinHeard {
            type Msg = u64;
            type Output = u64;
            fn emit(&mut self, _r: Round) -> u64 {
                self.0
            }
            fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
                Control::Decide(*d.values().min().unwrap())
            }
        }

        let size = n(6);
        let protos: Vec<_> = (0..6).map(|i| MinHeard(100 + i)).collect();
        let mut adv = Partition::new(size);
        let report = Engine::new(size)
            .run(protos, &mut adv, &AnyPattern::new(size))
            .unwrap();
        let outs: Vec<u64> = report.outputs().into_iter().flatten().collect();
        assert_eq!(outs, vec![100, 100, 100, 103, 103, 103]);
    }
}
