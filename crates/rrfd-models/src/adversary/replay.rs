//! Replaying captured runs: the second half of the capture → replay
//! debugging workflow.
//!
//! Any engine (`rrfd_core::Engine` or the threaded runtime) can record a
//! [`RunTrace`] of a run; a [`ReplayDetector`] built from that trace then
//! re-presents exactly the recorded suspicion sets `D(i,r)`, round by
//! round. Because both engines are deterministic given the detector's
//! choices, replaying a trace through the same protocol reproduces the
//! original run bit for bit — decisions, decision rounds, and the fault
//! pattern all match. Past the end of the recording the detector reports
//! no faults, so a replay of a truncated trace stays legal in every model.

use rrfd_core::{FaultDetector, FaultPattern, Round, RoundFaults, RunTrace, SystemSize};

/// A detector that re-drives a recorded run: at round `r` it returns the
/// trace's round-`r` suspicion sets, and [`RoundFaults::none`] once the
/// recording is exhausted.
///
/// # Examples
///
/// Capture a run, then replay it and get the identical execution:
///
/// ```
/// use rrfd_core::{Control, Delivery, Engine, Round, RoundProtocol, SystemSize};
/// use rrfd_models::adversary::{RandomAdversary, ReplayDetector};
/// use rrfd_models::predicates::KUncertainty;
///
/// #[derive(Clone)]
/// struct MinHeard(u64);
/// impl RoundProtocol for MinHeard {
///     type Msg = u64;
///     type Output = u64;
///     fn emit(&mut self, _r: Round) -> u64 { self.0 }
///     fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
///         Control::Decide(d.values().copied().min().unwrap())
///     }
/// }
///
/// let n = SystemSize::new(4).unwrap();
/// let model = KUncertainty::new(n, 2);
/// let protos: Vec<_> = (0..4).map(|i| MinHeard(10 + i)).collect();
///
/// let (original, trace) = Engine::new(n).run_traced(
///     protos.clone(),
///     &mut RandomAdversary::new(model, 7),
///     &model,
/// );
/// let (replayed, retrace) = Engine::new(n).run_traced(
///     protos,
///     &mut ReplayDetector::from_trace(&trace),
///     &model,
/// );
/// assert_eq!(trace, retrace);
/// assert_eq!(original.unwrap().outputs(), replayed.unwrap().outputs());
/// ```
#[derive(Debug, Clone)]
pub struct ReplayDetector {
    n: SystemSize,
    rounds: Vec<RoundFaults>,
}

impl ReplayDetector {
    /// Builds a detector that replays the rounds of a captured trace —
    /// including, for a violation trace, the final offending round, so the
    /// replay reproduces the violation too.
    #[must_use]
    pub fn from_trace(trace: &RunTrace) -> Self {
        ReplayDetector {
            n: trace.system_size(),
            rounds: trace.rounds().iter().map(|r| r.faults.clone()).collect(),
        }
    }

    /// Builds a detector that replays a recorded fault pattern.
    #[must_use]
    pub fn from_pattern(pattern: &FaultPattern) -> Self {
        ReplayDetector {
            n: pattern.system_size(),
            rounds: pattern.iter().map(|(_, rf)| rf.clone()).collect(),
        }
    }

    /// Builds a detector from raw per-round suspicion sets.
    ///
    /// # Panics
    ///
    /// Panics if any round was built for a different system size.
    #[must_use]
    pub fn from_rounds(n: SystemSize, rounds: Vec<RoundFaults>) -> Self {
        for rf in &rounds {
            assert_eq!(rf.system_size(), n, "recorded round has wrong system size");
        }
        ReplayDetector { n, rounds }
    }

    /// How many rounds of recording this detector can replay before it
    /// falls back to reporting no faults.
    #[must_use]
    pub fn recorded_rounds(&self) -> usize {
        self.rounds.len()
    }
}

impl FaultDetector for ReplayDetector {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        self.rounds
            .get(round.index())
            .cloned()
            .unwrap_or_else(|| RoundFaults::none(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RandomAdversary;
    use crate::predicates::KUncertainty;
    use rrfd_core::{
        Control, Delivery, Engine, EngineError, IdSet, ProcessId, RoundProtocol, TraceOutcome,
    };

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[derive(Clone)]
    struct SumThree {
        acc: u64,
        me: u64,
    }

    impl RoundProtocol for SumThree {
        type Msg = u64;
        type Output = u64;
        fn emit(&mut self, _r: Round) -> u64 {
            self.me
        }
        fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
            self.acc += d.values().sum::<u64>();
            if d.round.get() >= 3 {
                Control::Decide(self.acc)
            } else {
                Control::Continue
            }
        }
    }

    fn protos(size: usize) -> Vec<SumThree> {
        (0..size)
            .map(|i| SumThree {
                acc: 0,
                me: i as u64 + 1,
            })
            .collect()
    }

    #[test]
    fn replay_reproduces_a_random_run_exactly() {
        let size = n(5);
        let model = KUncertainty::new(size, 2);
        for seed in 0..8u64 {
            let (original, trace) = Engine::new(size).run_traced(
                protos(5),
                &mut RandomAdversary::new(model, seed),
                &model,
            );
            let (replayed, retrace) = Engine::new(size).run_traced(
                protos(5),
                &mut ReplayDetector::from_trace(&trace),
                &model,
            );
            assert_eq!(trace, retrace, "seed {seed}");
            let original = original.unwrap();
            let replayed = replayed.unwrap();
            assert_eq!(original.outputs(), replayed.outputs(), "seed {seed}");
            assert_eq!(original.pattern, replayed.pattern, "seed {seed}");
            assert_eq!(
                original.rounds_executed, replayed.rounds_executed,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn replay_reproduces_a_violation() {
        use rrfd_core::AnyPattern;

        struct IllFormed(SystemSize);
        impl FaultDetector for IllFormed {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, _r: Round, _h: &FaultPattern) -> RoundFaults {
                let mut rf = RoundFaults::none(self.0);
                rf.set(ProcessId::new(0), IdSet::universe(self.0));
                rf
            }
        }

        let size = n(3);
        let model = AnyPattern::new(size);
        let (result, trace) = Engine::new(size).run_traced(protos(3), &mut IllFormed(size), &model);
        assert!(matches!(result, Err(EngineError::Violation(_))));
        assert!(matches!(trace.outcome(), TraceOutcome::Violation(_)));

        // The offending round is in the trace, so the replay hits the same
        // wall at the same round.
        let (replayed, retrace) = Engine::new(size).run_traced(
            protos(3),
            &mut ReplayDetector::from_trace(&trace),
            &model,
        );
        assert!(matches!(replayed, Err(EngineError::Violation(_))));
        assert_eq!(trace, retrace);
    }

    #[test]
    fn replay_goes_quiet_past_the_recording() {
        let size = n(3);
        let mut rf = RoundFaults::none(size);
        rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
        let mut det = ReplayDetector::from_rounds(size, vec![rf.clone()]);
        assert_eq!(det.recorded_rounds(), 1);
        let h = FaultPattern::new(size);
        assert_eq!(det.next_round(Round::new(1), &h), rf);
        assert_eq!(det.next_round(Round::new(2), &h), RoundFaults::none(size));
    }

    #[test]
    fn from_pattern_matches_from_trace() {
        let size = n(4);
        let model = KUncertainty::new(size, 2);
        let (_, trace) =
            Engine::new(size).run_traced(protos(4), &mut RandomAdversary::new(model, 3), &model);
        let mut a = ReplayDetector::from_trace(&trace);
        let mut b = ReplayDetector::from_pattern(&trace.pattern());
        let h = FaultPattern::new(size);
        for r in 1..=trace.rounds().len() as u32 + 1 {
            assert_eq!(
                a.next_round(Round::new(r), &h),
                b.next_round(Round::new(r), &h)
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong system size")]
    fn size_mismatch_is_caught() {
        let _ = ReplayDetector::from_rounds(n(3), vec![RoundFaults::none(n(4))]);
    }
}
