//! Deterministic detectors: scripts, the fault-free detector, and the ring
//! miss pattern of §2 item 4.

use rrfd_core::{FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, SystemSize};

/// A detector that replays a fixed script of rounds, then reports no faults
/// forever.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundFaults, SystemSize};
/// use rrfd_models::adversary::ScriptedDetector;
///
/// let n = SystemSize::new(3).unwrap();
/// let mut r1 = RoundFaults::none(n);
/// r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
/// let mut det = ScriptedDetector::new(n, vec![r1.clone()]);
///
/// let history = FaultPattern::new(n);
/// assert_eq!(det.next_round(Round::new(1), &history), r1);
/// assert_eq!(det.next_round(Round::new(2), &history), RoundFaults::none(n));
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedDetector {
    n: SystemSize,
    script: Vec<RoundFaults>,
}

impl ScriptedDetector {
    /// Creates a detector that plays `script[r−1]` at round `r`.
    ///
    /// # Panics
    ///
    /// Panics if a scripted round was built for a different system size.
    #[must_use]
    pub fn new(n: SystemSize, script: Vec<RoundFaults>) -> Self {
        for rf in &script {
            assert_eq!(rf.system_size(), n, "scripted round has wrong system size");
        }
        ScriptedDetector { n, script }
    }
}

impl FaultDetector for ScriptedDetector {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, round: Round, _history: &FaultPattern) -> RoundFaults {
        self.script
            .get(round.index())
            .cloned()
            .unwrap_or_else(|| RoundFaults::none(self.n))
    }
}

/// The benign detector: nobody is ever suspected. Legal in every model of
/// the paper, and the baseline for failure-free measurements.
#[derive(Debug, Clone, Copy)]
pub struct NoFailures {
    n: SystemSize,
}

impl NoFailures {
    /// Creates the fault-free detector.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        NoFailures { n }
    }
}

impl FaultDetector for NoFailures {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, _round: Round, _history: &FaultPattern) -> RoundFaults {
        RoundFaults::none(self.n)
    }
}

/// The ring pattern from §2 item 4: every round, `p_i` misses exactly
/// `p_{(i+1) mod n}`.
///
/// Legal under the antisymmetric clause (for `n ≥ 3`) but violating eq. 4 —
/// the witness that antisymmetry alone does not imply "someone is trusted by
/// all". The knowledge-spread experiment E11 runs gossip under this
/// detector to measure how long a process takes to become known to all.
#[derive(Debug, Clone, Copy)]
pub struct RingMiss {
    n: SystemSize,
}

impl RingMiss {
    /// Creates the ring detector.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2` (a one-process ring would make a process miss
    /// itself only, which is a different pattern).
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        assert!(n.get() >= 2, "ring pattern needs at least two processes");
        RingMiss { n }
    }
}

impl FaultDetector for RingMiss {
    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn next_round(&mut self, _round: Round, _history: &FaultPattern) -> RoundFaults {
        let n = self.n.get();
        let sets = (0..n)
            .map(|i| IdSet::singleton(ProcessId::new((i + 1) % n)))
            .collect();
        RoundFaults::from_sets(self.n, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::AntiSymmetric;
    use crate::predicates::SomeoneTrustedByAll;
    use rrfd_core::RrfdPredicate;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn script_replays_then_goes_quiet() {
        let size = n(3);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(1), IdSet::singleton(ProcessId::new(0)));
        let mut det = ScriptedDetector::new(size, vec![r1.clone()]);
        let h = FaultPattern::new(size);
        assert_eq!(det.next_round(Round::new(1), &h), r1);
        assert_eq!(det.next_round(Round::new(5), &h), RoundFaults::none(size));
    }

    #[test]
    fn no_failures_never_suspects() {
        let size = n(4);
        let mut det = NoFailures::new(size);
        let h = FaultPattern::new(size);
        for r in 1..=3 {
            assert!(det.next_round(Round::new(r), &h).union().is_empty());
        }
    }

    #[test]
    fn ring_is_antisymmetric_but_not_eq4() {
        let size = n(5);
        let mut det = RingMiss::new(size);
        let h = FaultPattern::new(size);
        let round = det.next_round(Round::new(1), &h);
        assert!(AntiSymmetric::new(size).admits(&h, &round));
        assert!(!SomeoneTrustedByAll::new(size).admits(&h, &round));
    }

    #[test]
    fn two_process_ring_is_mutual_miss() {
        // With n = 2 the "ring" degenerates into a mutual miss, which is
        // *not* antisymmetric — matching the paper's n ≥ 3 caveat.
        let size = n(2);
        let mut det = RingMiss::new(size);
        let h = FaultPattern::new(size);
        let round = det.next_round(Round::new(1), &h);
        assert!(!AntiSymmetric::new(size).admits(&h, &round));
    }

    #[test]
    #[should_panic(expected = "wrong system size")]
    fn script_size_mismatch_is_caught() {
        let _ = ScriptedDetector::new(n(3), vec![RoundFaults::none(n(4))]);
    }
}
