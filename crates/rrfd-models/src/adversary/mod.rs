//! Adversaries: fault detectors that *drive* an RRFD system.
//!
//! "The fault-detector may be considered in fact to be an adversary. The
//! more freedom the RRFD has to present different sets of faulty processes,
//! the more power it has and the harder it will be to solve problems."
//!
//! This module provides:
//!
//! * [`RandomAdversary`] — a seeded adversary that, for any
//!   [`SampleModel`] predicate, generates uniformly-flavoured legal rounds.
//!   Every predicate in [`crate::predicates`] implements [`SampleModel`]
//!   with a *constructive* sampler (no rejection loops), so random runs are
//!   cheap at any system size.
//! * [`ScriptedDetector`] and [`NoFailures`] — deterministic detectors for
//!   tests and hand-built executions.
//! * [`ReplayDetector`] — re-drives a captured [`rrfd_core::RunTrace`]
//!   bit for bit, closing the capture → replay debugging loop.
//! * [`SilencingCrash`] — the targeted worst-case adversary behind the
//!   synchronous lower-bound experiment (E9): it silences `k` value-carrier
//!   chains per round and defeats any ⌊f/k⌋-round k-set agreement protocol.
//! * [`RingMiss`] — the `p_1 misses p_2 misses … misses p_1` pattern from
//!   §2 item 4's discussion of the antisymmetric clause.
//! * [`SpreadKUncertainty`], [`StaggeredCrash`], [`Partition`] — further
//!   boundary adversaries: Theorem 3.1's k-value spread, the staggered
//!   crash schedule that pins early-stopping consensus, and the network
//!   partition that eq. 4 exists to exclude.

mod random;
mod replay;
mod scripted;
mod silencer;
mod worst_case;

pub use random::{RandomAdversary, SampleModel};
pub use replay::ReplayDetector;
pub use scripted::{NoFailures, RingMiss, ScriptedDetector};
pub use silencer::SilencingCrash;
pub use worst_case::{Partition, SpreadKUncertainty, StaggeredCrash};
