//! Exhaustive enumeration of fault-detector rounds for small systems.
//!
//! A round of an RRFD over `n` processes is a choice of one subset per
//! process — `(2ⁿ)ⁿ` possibilities. For `n ≤ 5` that is at most ~33.5
//! million, small enough to enumerate completely (if slowly at the top
//! end); filtering by a model predicate then yields *every* move the
//! adversary could legally make, which turns sampled protocol tests into
//! proofs-by-enumeration (e.g. Theorem 3.1 for small `n`, in
//! `rrfd-protocols`) and powers the implication lattice in `rrfd-analyze`.

use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};

/// Iterates over **every** well-formed round (each `D(i,r) ⊊ S`) of a
/// system of `n` processes.
///
/// # Panics
///
/// Panics for `n > 5` — the space is `2^(n²)` and enumeration beyond
/// `n = 5` is a mistake.
pub fn all_rounds(n: SystemSize) -> impl Iterator<Item = RoundFaults> {
    assert!(n.get() <= 5, "exhaustive enumeration is for n ≤ 5");
    let procs = n.get();
    let subsets = 1u64 << procs; // 2^n bitmaps per process
    let total = subsets.pow(procs as u32);
    (0..total).filter_map(move |code| {
        let mut code = code;
        let mut sets = Vec::with_capacity(procs);
        for _ in 0..procs {
            let bits = code % subsets;
            code /= subsets;
            let d: IdSet = (0..procs)
                .filter(|j| bits & (1 << j) != 0)
                .map(ProcessId::new)
                .collect();
            // Well-formedness: D(i,r) ≠ S.
            if d == IdSet::universe(n) {
                return None;
            }
            sets.push(d);
        }
        Some(RoundFaults::from_sets(n, sets))
    })
}

/// Iterates over every legal *first* round of `model`: all well-formed
/// rounds admitted against the empty history.
pub fn all_first_rounds<P>(model: P) -> impl Iterator<Item = RoundFaults>
where
    P: RrfdPredicate,
{
    let n = model.system_size();
    let empty = FaultPattern::new(n);
    all_rounds(n).filter(move |round| model.admits(&empty, round))
}

/// Enumerates **every** legal pattern of exactly `rounds` rounds of
/// `model` (each round legal against the prefix before it).
///
/// The space is the product of per-round legal moves — use only with small
/// systems and short horizons, and bound the blow-up with `max_patterns`.
///
/// # Panics
///
/// Panics if more than `max_patterns` patterns exist.
#[must_use]
pub fn all_patterns<P>(model: &P, rounds: u32, max_patterns: usize) -> Vec<FaultPattern>
where
    P: RrfdPredicate,
{
    let n = model.system_size();
    let mut complete = Vec::new();
    let mut stack = vec![FaultPattern::new(n)];
    while let Some(prefix) = stack.pop() {
        if prefix.rounds() as u32 == rounds {
            complete.push(prefix);
            assert!(
                complete.len() <= max_patterns,
                "pattern enumeration exceeded {max_patterns}"
            );
            continue;
        }
        for round in all_rounds(n) {
            if model.admits(&prefix, &round) {
                let mut next = prefix.clone();
                next.push(round);
                stack.push(next);
            }
        }
    }
    complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{AsyncResilient, IdenticalViews, KUncertainty};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn counts_match_the_combinatorics() {
        // n = 2: each process picks one of 2² − 1 = 3 allowed subsets.
        assert_eq!(all_rounds(n(2)).count(), 9);
        // n = 3: (2³ − 1)³ = 343.
        assert_eq!(all_rounds(n(3)).count(), 343);
    }

    #[test]
    fn rounds_are_distinct_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for round in all_rounds(n(3)) {
            let key: Vec<u128> = round.iter().map(|(_, d)| d.bits()).collect();
            assert!(seen.insert(key), "duplicate round enumerated");
            for (_, d) in round.iter() {
                assert_ne!(d, IdSet::universe(n(3)));
            }
        }
    }

    #[test]
    fn filtered_counts_are_consistent() {
        // Identical views over n = 3: one shared subset of 7 choices.
        assert_eq!(all_first_rounds(IdenticalViews::new(n(3))).count(), 7);
        // k = 1 uncertainty over n = 2 equals identical views over n = 2.
        let k1: Vec<_> = all_first_rounds(KUncertainty::new(n(2), 1)).collect();
        let eq: Vec<_> = all_first_rounds(IdenticalViews::new(n(2))).collect();
        assert_eq!(k1, eq);
    }

    #[test]
    fn async_resilience_counts() {
        // n = 3, f = 1: each D(i) has ≤ 1 member → 4 choices per process.
        assert_eq!(
            all_first_rounds(AsyncResilient::new(n(3), 1)).count(),
            4 * 4 * 4
        );
    }

    #[test]
    fn pattern_enumeration_respects_history() {
        use crate::predicates::Crash;
        // Crash n = 3, f = 1 over 2 rounds: every pattern must keep a
        // single victim and make its crash universal by round 2.
        let model = Crash::new(n(3), 1);
        let patterns = all_patterns(&model, 2, 10_000);
        assert!(!patterns.is_empty());
        for p in &patterns {
            assert!(model.admits_pattern(p));
            assert!(p.cumulative_union().len() <= 1);
        }
        // The all-quiet pattern is among them.
        assert!(patterns.iter().any(|p| p.cumulative_union().is_empty()));
    }

    #[test]
    fn four_process_rounds_enumerate_fully() {
        // (2⁴ − 1)⁴ = 50 625 well-formed rounds; n = 5 would be
        // (2⁵ − 1)⁵ ≈ 28.6M, still enumerable but too slow for a unit test.
        assert_eq!(all_rounds(n(4)).count(), 50_625);
    }

    #[test]
    #[should_panic(expected = "n ≤ 5")]
    fn large_systems_are_rejected() {
        let _ = all_rounds(SystemSize::new(6).unwrap()).count();
    }
}
