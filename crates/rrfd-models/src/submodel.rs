//! Submodel relations between RRFD systems.
//!
//! "Let `P_A` be the predicate defining an RRFD system A, and `P_B` define
//! B over the same number of processes; we say that A is a *submodel* of B
//! iff `P_A ⇒ P_B`. Obviously, if A is a submodel of B then A implements B.
//! The contrary does not hold."
//!
//! Logical implication between arbitrary predicates is not decidable by a
//! library, but it is *refutable* by sampling: generate many legal A-runs
//! and check each round against B. [`refines_on_samples`] does exactly
//! that, and is the tool the test-suite uses to machine-check every
//! submodel claim the paper makes (crash ⊆ omission, snapshot ⊆ SWMR ⊆
//! async, Peq ⊆ P1-uncertainty, A ⊆ B of §2 item 3, …).

use crate::adversary::SampleModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate};

/// Outcome of a sampled refinement check.
#[derive(Debug, Clone)]
pub enum Refinement {
    /// Every sampled A-round was admitted by B.
    NotRefuted {
        /// How many rounds were checked in total.
        rounds_checked: usize,
    },
    /// A legal A-round that B rejects — a counterexample to `P_A ⇒ P_B`.
    Refuted {
        /// History under which the counterexample arose (legal for both up
        /// to this point).
        history: FaultPattern,
        /// The offending round: legal for A, rejected by B.
        round: RoundFaults,
    },
}

impl Refinement {
    /// `true` when no counterexample was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Refinement::NotRefuted { .. })
    }
}

/// Samples `runs` runs of `rounds` rounds each from `a` and checks every
/// round against `b`. Finding no counterexample does not *prove* `P_A ⇒
/// P_B`, but the samplers are built to roam their predicates' full
/// behaviour, so surviving thousands of rounds is strong evidence — and a
/// single counterexample is conclusive refutation.
pub fn refines_on_samples<A, B>(a: &A, b: &B, runs: usize, rounds: u32, seed: u64) -> Refinement
where
    A: SampleModel,
    B: RrfdPredicate,
{
    assert_eq!(
        a.system_size(),
        b.system_size(),
        "submodel comparison needs a common system size"
    );
    let mut checked = 0usize;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(run as u64));
        let mut history = FaultPattern::new(a.system_size());
        for _ in 0..rounds {
            let round = a.sample_round(&mut rng, &history);
            debug_assert!(a.admits(&history, &round), "sampler broke its own model");
            if !b.admits(&history, &round) {
                return Refinement::Refuted { history, round };
            }
            checked += 1;
            history.push(round);
        }
    }
    Refinement::NotRefuted {
        rounds_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{
        AsyncResilient, Crash, DetectorS, IdenticalViews, KUncertainty, SendOmission, Snapshot,
        SomeoneTrustedByAll, Swmr, SystemB,
    };
    use rrfd_core::SystemSize;

    const RUNS: usize = 40;
    const ROUNDS: u32 = 8;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn crash_refines_send_omission() {
        let size = n(7);
        let r = refines_on_samples(
            &Crash::new(size, 3),
            &SendOmission::new(size, 3),
            RUNS,
            ROUNDS,
            11,
        );
        assert!(r.holds(), "paper: crash is a submodel of send-omission");
    }

    #[test]
    fn send_omission_does_not_refine_crash() {
        let size = n(7);
        let r = refines_on_samples(
            &SendOmission::new(size, 3),
            &Crash::new(size, 3),
            RUNS,
            ROUNDS,
            12,
        );
        assert!(!r.holds(), "omission faults may heal; crashes may not");
    }

    #[test]
    fn snapshot_refines_swmr_and_async() {
        let size = n(7);
        let snap = Snapshot::new(size, 3);
        assert!(refines_on_samples(&snap, &Swmr::new(size, 3), RUNS, ROUNDS, 13).holds());
        assert!(refines_on_samples(&snap, &AsyncResilient::new(size, 3), RUNS, ROUNDS, 14).holds());
    }

    #[test]
    fn swmr_refines_async_but_not_conversely() {
        let size = n(7);
        assert!(refines_on_samples(
            &Swmr::new(size, 3),
            &AsyncResilient::new(size, 3),
            RUNS,
            ROUNDS,
            15
        )
        .holds());
        // With f ≥ large enough misses, async can suspect everyone somewhere.
        assert!(!refines_on_samples(
            &AsyncResilient::new(size, 6),
            &SomeoneTrustedByAll::new(size),
            RUNS,
            ROUNDS,
            16
        )
        .holds());
    }

    #[test]
    fn async_refines_system_b_strictly() {
        let size = n(7);
        let a = AsyncResilient::new(size, 1);
        let b = SystemB::new(size, 1, 3);
        assert!(refines_on_samples(&a, &b, RUNS, ROUNDS, 17).holds());
        assert!(
            !refines_on_samples(&b, &a, RUNS, ROUNDS, 18).holds(),
            "System B is strictly weaker than A"
        );
    }

    #[test]
    fn identical_views_refines_k1_uncertainty() {
        let size = n(7);
        let r = refines_on_samples(
            &IdenticalViews::new(size),
            &KUncertainty::new(size, 1),
            RUNS,
            ROUNDS,
            19,
        );
        assert!(r.holds(), "Peq is the k = 1 uncertainty detector");
    }

    #[test]
    fn k_uncertainty_is_monotone_in_k() {
        let size = n(7);
        assert!(refines_on_samples(
            &KUncertainty::new(size, 2),
            &KUncertainty::new(size, 4),
            RUNS,
            ROUNDS,
            20
        )
        .holds());
        assert!(!refines_on_samples(
            &KUncertainty::new(size, 4),
            &KUncertainty::new(size, 2),
            RUNS,
            ROUNDS,
            21
        )
        .holds());
    }

    #[test]
    fn detector_s_matches_omission_with_f_n_minus_1() {
        // §2 item 6's predicate manipulation: P6 ⇔ footprint(n−1). Our P1
        // additionally carries (reconciled) self-trust, so only the
        // omission → S direction is an implication; the sampled S → P1
        // direction also holds because the S sampler's suspicion sets are
        // unconstrained *except* for the immortal — catch both.
        let size = n(5);
        assert!(refines_on_samples(
            &SendOmission::new(size, 4),
            &DetectorS::new(size),
            RUNS,
            ROUNDS,
            22
        )
        .holds());
    }

    #[test]
    fn snapshot_does_not_refine_identical_views() {
        let size = n(7);
        assert!(!refines_on_samples(
            &Snapshot::new(size, 3),
            &IdenticalViews::new(size),
            RUNS,
            ROUNDS,
            23
        )
        .holds());
    }

    #[test]
    fn detector_s_and_diamond_s_are_incomparable() {
        use crate::predicates::EventuallyStrong;
        use rrfd_core::Round;
        let size = n(5);
        // P6 does not refine ◊S: P6 has no per-round miss bound (eq. 3),
        // so its sampler produces rounds with |D(i,r)| > f.
        assert!(!refines_on_samples(
            &DetectorS::new(size),
            &EventuallyStrong::new(size, 2, Round::new(1)),
            RUNS,
            ROUNDS,
            32
        )
        .holds());
        // Nor does ◊S refine P6: before stabilization *everyone* may be
        // suspected, making the run-wide footprint hit n.
        assert!(!refines_on_samples(
            &EventuallyStrong::new(size, 2, Round::new(6)),
            &DetectorS::new(size),
            RUNS,
            ROUNDS,
            33
        )
        .holds());
    }

    #[test]
    #[should_panic(expected = "common system size")]
    fn size_mismatch_is_rejected() {
        let _ = refines_on_samples(&Crash::new(n(4), 1), &Crash::new(n(5), 1), 1, 1, 0);
    }
}
