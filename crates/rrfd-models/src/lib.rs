//! The model zoo of the RRFD paper: predicates for every system of §2, §3
//! and §5, adversaries that drive them, and machinery for checking submodel
//! relations.
//!
//! The paper's program is to study a system by finding its RRFD
//! counterpart: "the RRFD counterparts, being part of the same family,
//! bring forth the commonality and the difference between the systems."
//! Accordingly this crate is organised as:
//!
//! * [`predicates`] — one type per model: send-omission, crash,
//!   asynchronous `f`-resilient, System B, SWMR (with both candidate
//!   clauses), atomic snapshot, detector-S, the k-uncertainty detector of
//!   Theorem 3.1, and the identical-views detector of §5.
//! * [`adversary`] — detectors that *play* those models: seeded random
//!   adversaries with constructive samplers, scripted detectors, the ring
//!   pattern, and the chain-silencing lower-bound adversary.
//! * [`submodel`] — sampled refinement checking of `P_A ⇒ P_B` claims.
//! * [`enumerate`] — exhaustive enumeration of legal rounds for `n ≤ 4`,
//!   enabling proofs-by-enumeration of the protocol theorems at small
//!   sizes.
//! * [`zoo`] — the standard 13-predicate family as boxed, thread-shareable
//!   values, with a strength ranking derived from the committed lattice.
//! * [`conformance`] — the online monitor deciding, round by round, which
//!   zoo predicates a live run still conforms to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod conformance;
pub mod enumerate;
pub mod predicates;
pub mod submodel;
pub mod zoo;
