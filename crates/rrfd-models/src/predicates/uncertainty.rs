//! §3 and §5: the **k-uncertainty** detector of Theorem 3.1 and the
//! **identical-views** detector of equation 5.
//!
//! Theorem 3.1's detector bounds per-round disagreement between the local
//! fault detectors:
//!
//! ```text
//! (∀ r > 0)( |∪_{p_i∈S} D(i,r)  ∖  ∩_{p_i∈S} D(i,r)| < k )
//! ```
//!
//! With it, k-set agreement is solvable in a single round. For `k = 1` the
//! local detectors may never disagree, which is equation 5's
//!
//! ```text
//! (∀ r > 0)(∀ p_i, p_j ∈ S)( D(i,r) = D(j,r) )
//! ```
//!
//! — the predicate the semi-synchronous system of §5 implements with two
//! steps per round, yielding 2-step consensus.

use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

/// The Theorem 3.1 predicate `Pk`: per-round uncertainty below `k`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::KUncertainty;
///
/// let n = SystemSize::new(4).unwrap();
/// let p = KUncertainty::new(n, 2);
/// // All agree p3 is out; they disagree only about p2: uncertainty 1 < 2.
/// let rf = RoundFaults::from_sets(n, vec![
///     IdSet::singleton(ProcessId::new(3)),
///     IdSet::singleton(ProcessId::new(3)).union(IdSet::singleton(ProcessId::new(2))),
///     IdSet::singleton(ProcessId::new(3)),
///     IdSet::singleton(ProcessId::new(3)),
/// ]);
/// assert!(p.admits(&FaultPattern::new(n), &rf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KUncertainty {
    n: SystemSize,
    k: usize,
}

impl KUncertainty {
    /// Builds `Pk` for `n` processes and agreement parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < n` (k-set agreement is defined for `n > k`).
    #[must_use]
    pub fn new(n: SystemSize, k: usize) -> Self {
        assert!(k >= 1, "k-uncertainty requires k ≥ 1");
        assert!(k < n.get(), "k-set agreement needs n > k");
        KUncertainty { n, k }
    }

    /// The agreement parameter `k`.
    #[must_use]
    pub fn k(self) -> usize {
        self.k
    }
}

impl RrfdPredicate for KUncertainty {
    fn name(&self) -> String {
        format!("Pk(uncertainty < {})", self.k)
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        round.uncertainty().len() < self.k
    }
}

/// Equation 5: all processes receive identical suspicion sets every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdenticalViews {
    n: SystemSize,
}

impl IdenticalViews {
    /// Builds `Peq` for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        IdenticalViews { n }
    }
}

impl RrfdPredicate for IdenticalViews {
    fn name(&self) -> String {
        "Peq(D(i,r) = D(j,r))".to_owned()
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        let mut sets = round.iter().map(|(_, d)| d);
        match sets.next() {
            None => true,
            Some(first) => sets.all(|d| d == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn uncertainty_budget_is_strict() {
        let n = n4();
        // k = 1: zero disagreement allowed.
        let p1 = KUncertainty::new(n, 1);
        let agree = RoundFaults::from_sets(n, vec![ids(&[3]); 4]);
        assert!(p1.admits(&FaultPattern::new(n), &agree));
        let disagree =
            RoundFaults::from_sets(n, vec![ids(&[3]), ids(&[3]), ids(&[3]), IdSet::empty()]);
        assert!(!p1.admits(&FaultPattern::new(n), &disagree));
        // k = 2 tolerates one contested process.
        assert!(KUncertainty::new(n, 2).admits(&FaultPattern::new(n), &disagree));
    }

    #[test]
    fn uncertainty_counts_processes_not_pairs() {
        let n = n4();
        let p = KUncertainty::new(n, 2);
        // Two contested processes (p2 by some, p3 by some): uncertainty 2.
        let rf = RoundFaults::from_sets(
            n,
            vec![ids(&[2]), ids(&[3]), IdSet::empty(), IdSet::empty()],
        );
        assert!(!p.admits(&FaultPattern::new(n), &rf));
        assert!(KUncertainty::new(n, 3).admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn no_memory_between_rounds() {
        let n = n4();
        let p = KUncertainty::new(n, 1);
        let mut history = FaultPattern::new(n);
        history.push(RoundFaults::from_sets(n, vec![ids(&[0]); 4]));
        // A completely different unanimous verdict next round is fine.
        let rf = RoundFaults::from_sets(n, vec![ids(&[1, 2]); 4]);
        assert!(p.admits(&history, &rf));
    }

    #[test]
    fn identical_views_is_exactly_equality() {
        let n = n4();
        let p = IdenticalViews::new(n);
        assert!(p.admits(&FaultPattern::new(n), &RoundFaults::none(n)));
        let same = RoundFaults::from_sets(n, vec![ids(&[1, 2]); 4]);
        assert!(p.admits(&FaultPattern::new(n), &same));
        let mut off = same.clone();
        off.set(ProcessId::new(3), ids(&[1]));
        assert!(!p.admits(&FaultPattern::new(n), &off));
    }

    #[test]
    fn identical_views_implies_one_uncertainty() {
        // Peq ⇒ Pk with k = 1: equal sets have empty uncertainty.
        let n = n4();
        let peq = IdenticalViews::new(n);
        let p1 = KUncertainty::new(n, 1);
        for sets in [vec![IdSet::empty(); 4], vec![ids(&[0, 3]); 4]] {
            let rf = RoundFaults::from_sets(n, sets);
            assert!(peq.admits(&FaultPattern::new(n), &rf));
            assert!(p1.admits(&FaultPattern::new(n), &rf));
        }
    }

    #[test]
    #[should_panic(expected = "n > k")]
    fn k_must_be_below_n() {
        let _ = KUncertainty::new(n4(), 4);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn k_zero_is_rejected() {
        let _ = KUncertainty::new(n4(), 0);
    }
}
