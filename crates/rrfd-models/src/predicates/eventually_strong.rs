//! The **eventually strong** detector ◊S as an RRFD — the §7 future-work
//! direction ("show that in a precise sense RRFD generalizes the earlier
//! notion of fault-detector and rederive the associated results").
//!
//! Chandra-Toueg's ◊S guarantees that *eventually* some correct process is
//! never suspected. For executable finite runs, "eventually" is a
//! stabilization round `R` baked into the predicate:
//!
//! ```text
//! ∀ r, i:  |D(i,r)| ≤ f                      (eq. 3 — asynchrony)
//! ∃ p_j:  ∀ r > R, ∀ i:  p_j ∉ D(i,r)        (eventual accuracy)
//! ```
//!
//! Before round `R` the adversary is unconstrained beyond eq. 3 — in
//! particular *everyone* may be suspected, which is exactly why consensus
//! under ◊S needs the machinery of
//! [`DiamondSConsensus`](../../rrfd_protocols/diamond_s_consensus) (locking
//! via quorums, `2f < n`) rather than item 6's simple rotation.

use rrfd_core::{FaultPattern, IdSet, Round, RoundFaults, RrfdPredicate, SystemSize};

use super::AsyncResilient;

/// The ◊S predicate with resilience `f` and stabilization round `R`.
#[derive(Debug, Clone, Copy)]
pub struct EventuallyStrong {
    base: AsyncResilient,
    stabilization: Round,
}

impl EventuallyStrong {
    /// Builds ◊S for `n` processes, at most `f` misses per round, with
    /// accuracy holding strictly after `stabilization`.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n` — the resilience consensus under ◊S
    /// requires, enforced here so the model is honest about its use.
    #[must_use]
    pub fn new(n: SystemSize, f: usize, stabilization: Round) -> Self {
        assert!(2 * f < n.get(), "◊S consensus requires 2f < n");
        EventuallyStrong {
            base: AsyncResilient::new(n, f),
            stabilization,
        }
    }

    /// The stabilization round `R`.
    #[must_use]
    pub fn stabilization(&self) -> Round {
        self.stabilization
    }

    /// The per-round miss bound `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.base.f()
    }

    /// The set of processes unsuspected in every recorded round strictly
    /// after `R` (the candidate immortals).
    #[must_use]
    pub fn immortal_candidates(&self, history: &FaultPattern) -> IdSet {
        let n = self.system_size();
        let mut candidates = IdSet::universe(n);
        for (r, rf) in history.iter() {
            if r > self.stabilization {
                candidates -= rf.union();
            }
        }
        candidates
    }
}

impl RrfdPredicate for EventuallyStrong {
    fn name(&self) -> String {
        format!("◊S(f={}, stabilize>{})", self.base.f(), self.stabilization)
    }

    fn system_size(&self) -> SystemSize {
        self.base.system_size()
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        if !self.base.admits(history, round) {
            return false;
        }
        let this_round = Round::new(history.rounds() as u32 + 1);
        if this_round <= self.stabilization {
            return true;
        }
        // Some candidate immortal must survive this round too.
        !self
            .immortal_candidates(history)
            .difference(round.union())
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::ProcessId;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    #[test]
    fn before_stabilization_everyone_may_be_suspected() {
        let size = n(5);
        let p = EventuallyStrong::new(size, 2, Round::new(3));
        let h = FaultPattern::new(size);
        // Round 1: collectively every process is suspected — legal.
        let rf = RoundFaults::from_sets(
            size,
            vec![ids(&[1, 2]), ids(&[3, 4]), ids(&[0]), ids(&[0]), ids(&[0])],
        );
        assert!(p.admits(&h, &rf));
    }

    #[test]
    fn after_stabilization_an_immortal_must_survive() {
        let size = n(5);
        let p = EventuallyStrong::new(size, 2, Round::new(1));
        let mut h = FaultPattern::new(size);
        h.push(RoundFaults::none(size)); // round 1 (≤ R)

        // Round 2 (> R): suspecting {0,1} keeps {2,3,4} as candidates.
        let rf = RoundFaults::from_sets(size, vec![ids(&[0, 1]); 5]);
        assert!(p.admits(&h, &rf));
        h.push(rf);
        assert_eq!(p.immortal_candidates(&h), ids(&[2, 3, 4]));

        // Round 3: suspecting {2,3} narrows candidates to {4}.
        let rf = RoundFaults::from_sets(size, vec![ids(&[2, 3]); 5]);
        assert!(p.admits(&h, &rf));
        h.push(rf);
        assert_eq!(p.immortal_candidates(&h), ids(&[4]));

        // Round 4: suspecting p4 would kill the last candidate — rejected.
        let rf = RoundFaults::from_sets(size, vec![ids(&[4]); 5]);
        assert!(!p.admits(&h, &rf));
    }

    #[test]
    fn per_round_bound_still_applies() {
        let size = n(5);
        let p = EventuallyStrong::new(size, 1, Round::new(10));
        let h = FaultPattern::new(size);
        let mut rf = RoundFaults::none(size);
        rf.set(ProcessId::new(0), ids(&[1, 2]));
        assert!(!p.admits(&h, &rf));
    }

    #[test]
    #[should_panic(expected = "2f < n")]
    fn majority_resilience_is_enforced() {
        let _ = EventuallyStrong::new(n(4), 2, Round::new(1));
    }
}
