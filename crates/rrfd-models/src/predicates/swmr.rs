//! Equation 4 and its antisymmetric alternative: the **asynchronous SWMR
//! shared-memory** model (§2 item 4).
//!
//! The paper settles on eq. 3 plus
//!
//! ```text
//! ∀ r > 0:  |∪_{p_j∈S} D(j,r)| < n
//! ```
//!
//! — "in any round there is at least one process that is declared faulty to
//! no process" — which avoids the network-partition problem message passing
//! has when `2f ≥ n`. The paper also discusses an alternative clause,
//!
//! ```text
//! ∀ p_i, p_j:  p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)
//! ```
//!
//! (whoever misses you was seen by you — the first writer is read by all),
//! noting it does **not** imply eq. 4: misses can form a ring
//! `p_1 → p_2 → … → p_n → p_1`. Both clauses are provided here, and the
//! cycle-length experiment of §2 item 4 is reproduced in
//! `rrfd-protocols::equivalence`.

use rrfd_core::{And, FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

use super::AsyncResilient;

/// Equation 4 alone: some process is suspected by nobody each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SomeoneTrustedByAll {
    n: SystemSize,
}

impl SomeoneTrustedByAll {
    /// Builds the clause for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        SomeoneTrustedByAll { n }
    }
}

impl RrfdPredicate for SomeoneTrustedByAll {
    fn name(&self) -> String {
        "eq4(|∪D| < n)".to_owned()
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        round.union().len() < self.n.get()
    }
}

/// The antisymmetry clause: `p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntiSymmetric {
    n: SystemSize,
}

impl AntiSymmetric {
    /// Builds the clause for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        AntiSymmetric { n }
    }
}

impl RrfdPredicate for AntiSymmetric {
    fn name(&self) -> String {
        "antisym(j∈D(i) ⇒ i∉D(j))".to_owned()
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        round
            .iter()
            .all(|(i, d)| d.iter().all(|j| !round.of(j).contains(i)))
    }
}

/// The paper's SWMR model `P4 = P3 ∧ eq4`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::Swmr;
///
/// let n = SystemSize::new(3).unwrap();
/// let p = Swmr::new(n, 2);
/// // Everyone missing someone — but p0 is missed by nobody.
/// let rf = RoundFaults::from_sets(n, vec![
///     IdSet::singleton(ProcessId::new(1)),
///     IdSet::singleton(ProcessId::new(2)),
///     IdSet::singleton(ProcessId::new(1)),
/// ]);
/// assert!(p.admits(&FaultPattern::new(n), &rf));
/// ```
#[derive(Debug, Clone)]
pub struct Swmr {
    inner: And<AsyncResilient, SomeoneTrustedByAll>,
    f: usize,
}

impl Swmr {
    /// Builds `P4` for `n` processes with at most `f` crash faults.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n`.
    #[must_use]
    pub fn new(n: SystemSize, f: usize) -> Self {
        Swmr {
            inner: And::new(AsyncResilient::new(n, f), SomeoneTrustedByAll::new(n)),
            f,
        }
    }

    /// The resilience bound `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }
}

impl RrfdPredicate for Swmr {
    fn name(&self) -> String {
        format!("P4(SWMR, f={})", self.f)
    }

    fn system_size(&self) -> SystemSize {
        self.inner.system_size()
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        self.inner.admits(history, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn eq4_rejects_total_suspicion() {
        let n = n4();
        let p = SomeoneTrustedByAll::new(n);
        // Collectively every process is suspected by someone.
        let rf = RoundFaults::from_sets(n, vec![ids(&[1]), ids(&[2]), ids(&[3]), ids(&[0])]);
        assert!(!p.admits(&FaultPattern::new(n), &rf));
        // Leave p3 untouched.
        let rf2 = RoundFaults::from_sets(n, vec![ids(&[1]), ids(&[2]), ids(&[0]), ids(&[0])]);
        assert!(p.admits(&FaultPattern::new(n), &rf2));
    }

    #[test]
    fn antisymmetry_rejects_mutual_misses() {
        let n = n4();
        let p = AntiSymmetric::new(n);
        let mutual = RoundFaults::from_sets(
            n,
            vec![ids(&[1]), ids(&[0]), IdSet::empty(), IdSet::empty()],
        );
        assert!(!p.admits(&FaultPattern::new(n), &mutual));
    }

    #[test]
    fn antisymmetry_admits_the_ring() {
        // The paper's counterexample: p1 misses p2 misses p3 … misses p1.
        // Legal under antisymmetry (n ≥ 3), yet |∪D| = n, so eq4 rejects it.
        let n = n4();
        let ring = RoundFaults::from_sets(n, (0..4).map(|i| ids(&[(i + 1) % 4])).collect());
        assert!(AntiSymmetric::new(n).admits(&FaultPattern::new(n), &ring));
        assert!(!SomeoneTrustedByAll::new(n).admits(&FaultPattern::new(n), &ring));
    }

    #[test]
    fn swmr_needs_both_clauses() {
        let n = n4();
        let p = Swmr::new(n, 1);
        // eq4 holds but P3 fails: p0 misses two peers.
        let rf = RoundFaults::from_sets(
            n,
            vec![ids(&[1, 2]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
        assert!(!p.admits(&FaultPattern::new(n), &rf));
        // Both hold.
        let rf2 = RoundFaults::from_sets(
            n,
            vec![ids(&[1]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
        assert!(p.admits(&FaultPattern::new(n), &rf2));
    }

    #[test]
    fn self_suspicion_violates_antisymmetry() {
        // j = i gives p_i ∈ D(i,r) ⇒ p_i ∉ D(i,r): self-suspicion is
        // inconsistent under the antisymmetric reading.
        let n = n4();
        let p = AntiSymmetric::new(n);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), ids(&[0]));
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn names_are_informative() {
        assert!(Swmr::new(n4(), 2).name().contains("SWMR"));
        assert!(AntiSymmetric::new(n4()).name().contains("antisym"));
    }
}
