//! Equation 1 of the paper: the synchronous **send-omission** model
//! (§2 item 1).
//!
//! ```text
//! ∀ p_i, r:  p_i ∉ D(i,r)   ∧   |∪_{r>0} ∪_{p_i∈S} D(i,r)| ≤ f
//! ```
//!
//! A process never suspects itself, and across the whole run at most `f`
//! distinct processes are ever suspected by anyone — exactly the footprint
//! of `f` send-omission-faulty processes in a synchronous round.
//!
//! As with [`Crash`](super::Crash) (see its module docs), the self-trust
//! clause is read as applying to processes that are not already faulty:
//! `p_i ∈ D(i,r)` is allowed when `p_i` was suspected in an *earlier* round
//! ("such a process may know the message it sent through its local state",
//! §1). This keeps the paper's explicit claim that the crash model is a
//! submodel of the send-omission model true at the predicate level.

use rrfd_core::{FaultPattern, IdSet, RoundFaults, RrfdPredicate, SystemSize};

/// The send-omission predicate `P1` with failure bound `f`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::SendOmission;
///
/// let n = SystemSize::new(3).unwrap();
/// let p = SendOmission::new(n, 1);
/// let history = FaultPattern::new(n);
///
/// let mut ok = RoundFaults::none(n);
/// ok.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
/// assert!(p.admits(&history, &ok));
///
/// let mut too_many = ok.clone();
/// too_many.set(ProcessId::new(1), IdSet::singleton(ProcessId::new(0)));
/// assert!(!p.admits(&history, &too_many)); // two suspects exceed f = 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOmission {
    n: SystemSize,
    f: usize,
}

impl SendOmission {
    /// Builds the predicate for `n` processes of which at most `f` may be
    /// send-omission faulty.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n` — the paper requires "at most `f < n`
    /// processes".
    #[must_use]
    pub fn new(n: SystemSize, f: usize) -> Self {
        assert!(f < n.get(), "send-omission requires f < n");
        SendOmission { n, f }
    }

    /// The failure bound `f`.
    #[must_use]
    pub fn f(self) -> usize {
        self.f
    }
}

impl RrfdPredicate for SendOmission {
    fn name(&self) -> String {
        format!("P1(send-omission, f={})", self.f)
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        let suspected_before = history.cumulative_union();
        let self_trusting = round
            .iter()
            .all(|(i, d)| !d.contains(i) || suspected_before.contains(i));
        let footprint: IdSet = suspected_before.union(round.union());
        self_trusting && footprint.len() <= self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::ProcessId;

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn fault_free_round_is_always_admitted() {
        let p = SendOmission::new(n4(), 0);
        assert!(p.admits(&FaultPattern::new(n4()), &RoundFaults::none(n4())));
    }

    #[test]
    fn fresh_self_suspicion_is_rejected() {
        let p = SendOmission::new(n4(), 2);
        let mut rf = RoundFaults::none(n4());
        rf.set(ProcessId::new(1), ids(&[1]));
        assert!(!p.admits(&FaultPattern::new(n4()), &rf));
    }

    #[test]
    fn self_suspicion_of_known_faulty_is_allowed() {
        // p1 was already suspected, so it may now learn of its own fault.
        let n = n4();
        let p = SendOmission::new(n, 1);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[1]));
        history.push(r1);
        let mut r2 = RoundFaults::none(n);
        r2.set(ProcessId::new(1), ids(&[1]));
        assert!(p.admits(&history, &r2));
    }

    #[test]
    fn footprint_accumulates_across_rounds() {
        let n = n4();
        let p = SendOmission::new(n, 2);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[2]));
        r1.set(ProcessId::new(1), ids(&[3]));
        assert!(p.admits(&history, &r1)); // {p2,p3}: exactly f = 2
        history.push(r1);

        // A *new* suspect in a later round blows the budget…
        let mut r2 = RoundFaults::none(n);
        r2.set(ProcessId::new(0), ids(&[1]));
        assert!(!p.admits(&history, &r2));

        // …but re-suspecting old suspects is free.
        let mut r2b = RoundFaults::none(n);
        r2b.set(ProcessId::new(0), ids(&[2, 3]));
        r2b.set(ProcessId::new(2), ids(&[3]));
        assert!(p.admits(&history, &r2b));
    }

    #[test]
    fn unreliability_is_allowed_within_budget() {
        // The RRFD may suspect p2 to some and deliver to others, and flip
        // its mind between rounds — predicate 1 only bounds the footprint.
        let n = n4();
        let p = SendOmission::new(n, 1);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[2]));
        assert!(p.admits(&history, &r1));
        history.push(r1);
        // p2 is "back" for everyone in round 2.
        assert!(p.admits(&history, &RoundFaults::none(n)));
    }

    #[test]
    #[should_panic(expected = "f < n")]
    fn requires_f_below_n() {
        let _ = SendOmission::new(n4(), 4);
    }

    #[test]
    fn name_mentions_bound() {
        assert_eq!(SendOmission::new(n4(), 2).name(), "P1(send-omission, f=2)");
    }
}
