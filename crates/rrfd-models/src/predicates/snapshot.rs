//! §2 item 5: the **asynchronous atomic-snapshot** shared-memory model.
//!
//! On top of eq. 3 the snapshot model requires self-trust and that the
//! suspicion sets of any round form a containment chain:
//!
//! ```text
//! ∀ p_i, r:          p_i ∉ D(i,r)
//! ∀ p_i, p_j, r:     D(i,r) ⊆ D(j,r)  ∨  D(j,r) ⊆ D(i,r)
//! ```
//!
//! Intuitively, a snapshot taken later misses no write an earlier snapshot
//! saw, so "what I missed" is totally ordered across processes. The paper
//! notes that this model implementing f-resilient atomic-snapshot memory is
//! a simple corollary of Borowsky-Gafni [4].

use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

use super::AsyncResilient;

/// The atomic-snapshot predicate `P5` with failure bound `f`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::Snapshot;
///
/// let n = SystemSize::new(4).unwrap();
/// let p = Snapshot::new(n, 2);
/// // Chain: ∅ ⊆ {p3} ⊆ {p2,p3}.
/// let rf = RoundFaults::from_sets(n, vec![
///     IdSet::singleton(ProcessId::new(3)),
///     IdSet::empty(),
///     IdSet::singleton(ProcessId::new(3)),
///     IdSet::empty(),
/// ]);
/// assert!(p.admits(&FaultPattern::new(n), &rf));
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    base: AsyncResilient,
    f: usize,
}

impl Snapshot {
    /// Builds `P5` for `n` processes with at most `f` crash faults.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n`.
    #[must_use]
    pub fn new(n: SystemSize, f: usize) -> Self {
        Snapshot {
            base: AsyncResilient::new(n, f),
            f,
        }
    }

    /// The failure bound `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }
}

impl RrfdPredicate for Snapshot {
    fn name(&self) -> String {
        format!("P5(snapshot, f={})", self.f)
    }

    fn system_size(&self) -> SystemSize {
        self.base.system_size()
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        if !self.base.admits(history, round) {
            return false;
        }
        // Self-trust.
        if round.iter().any(|(i, d)| d.contains(i)) {
            return false;
        }
        // Containment chain: sorting by size and checking adjacent pairs
        // suffices, since ⊆ on a chain is consistent with cardinality.
        let mut sets: Vec<_> = round.iter().map(|(_, d)| d).collect();
        sets.sort_by_key(|d| d.len());
        sets.windows(2).all(|w| w[0].is_subset(w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn incomparable_sets_are_rejected() {
        let n = n4();
        let p = Snapshot::new(n, 2);
        let rf = RoundFaults::from_sets(
            n,
            vec![ids(&[1]), ids(&[2]), IdSet::empty(), IdSet::empty()],
        );
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn chains_are_admitted() {
        let n = n4();
        let p = Snapshot::new(n, 2);
        let rf =
            RoundFaults::from_sets(n, vec![ids(&[2, 3]), ids(&[3]), IdSet::empty(), ids(&[2])]);
        // {2,3} ⊇ {3}, {2} vs {3}: incomparable — rejected.
        assert!(!p.admits(&FaultPattern::new(n), &rf));

        // Fixing the chain (and self-trust: p3 must not carry {3}).
        let rf2 =
            RoundFaults::from_sets(n, vec![ids(&[2, 3]), ids(&[3]), ids(&[3]), IdSet::empty()]);
        assert!(p.admits(&FaultPattern::new(n), &rf2));
    }

    #[test]
    fn self_trust_is_enforced() {
        let n = n4();
        let p = Snapshot::new(n, 2);
        let rf = RoundFaults::from_sets(
            n,
            vec![IdSet::empty(), ids(&[1]), IdSet::empty(), IdSet::empty()],
        );
        // p1 suspects itself: chain holds but self-trust fails.
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn resilience_bound_is_inherited() {
        let n = n4();
        let p = Snapshot::new(n, 1);
        let rf = RoundFaults::from_sets(
            n,
            vec![ids(&[2, 3]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn snapshot_rounds_satisfy_eq4() {
        // P5 ⇒ eq4 whenever f < n: the union of a chain is its largest set,
        // of size ≤ f < n. This is why the snapshot model dodges partitions.
        use crate::predicates::SomeoneTrustedByAll;
        let n = n4();
        let snap = Snapshot::new(n, 2);
        let eq4 = SomeoneTrustedByAll::new(n);
        let rf = RoundFaults::from_sets(
            n,
            vec![ids(&[2, 3]), ids(&[3]), IdSet::empty(), IdSet::empty()],
        );
        assert!(snap.admits(&FaultPattern::new(n), &rf));
        assert!(eq4.admits(&FaultPattern::new(n), &rf));
    }
}
