//! §2 item 3's *System B*: the witness that eq. 3 is **not** the weakest
//! RRFD for asynchronous message passing.
//!
//! For `f < t` and `2t < n`, System B lets up to `t` processes be "slow"
//! and miss up to `t` peers each, while everyone else misses at most `f`:
//!
//! ```text
//! ∃ Q ⊆ S, |Q| ≤ t:  (∀ p_i ∈ S∖Q: |D(i,r)| ≤ f)  ∧  (∀ p_i ∈ Q: |D(i,r)| ≤ t)
//! ```
//!
//! Two rounds of B implement one round of A (= eq. 3 with bound `f`), so A
//! is a *strict* submodel of B even though both are equivalent to the same
//! asynchronous system. The two-rounds-of-B construction is implemented in
//! `rrfd-protocols::equivalence` and measured by experiment E2.

use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

/// The System B predicate `PB(f, t)`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::SystemB;
///
/// let n = SystemSize::new(5).unwrap();
/// let p = SystemB::new(n, 1, 2);
/// // p0 is slow and misses two peers; everyone else misses at most one.
/// let rf = RoundFaults::from_sets(n, vec![
///     IdSet::singleton(ProcessId::new(1)).union(IdSet::singleton(ProcessId::new(2))),
///     IdSet::empty(),
///     IdSet::singleton(ProcessId::new(0)),
///     IdSet::empty(),
///     IdSet::empty(),
/// ]);
/// assert!(p.admits(&FaultPattern::new(n), &rf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemB {
    n: SystemSize,
    f: usize,
    t: usize,
}

impl SystemB {
    /// Builds `PB` for `n` processes with fast bound `f` and slow bound `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `f < t` and `2t < n`, the side conditions under which
    /// the paper proves two rounds of B implement a round of A.
    #[must_use]
    pub fn new(n: SystemSize, f: usize, t: usize) -> Self {
        assert!(f < t, "System B requires f < t");
        assert!(2 * t < n.get(), "System B requires 2t < n");
        SystemB { n, f, t }
    }

    /// The fast-process bound `f`.
    #[must_use]
    pub fn f(self) -> usize {
        self.f
    }

    /// The slow-process bound `t` (also the cap on how many may be slow).
    #[must_use]
    pub fn t(self) -> usize {
        self.t
    }
}

impl RrfdPredicate for SystemB {
    fn name(&self) -> String {
        format!("PB(f={}, t={})", self.f, self.t)
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        // The minimal witness Q is exactly the processes exceeding the fast
        // bound; the round is legal iff there are at most t of them and none
        // exceeds the slow bound.
        let mut slow = 0usize;
        for (_, d) in round.iter() {
            if d.len() > self.f {
                if d.len() > self.t {
                    return false;
                }
                slow += 1;
            }
        }
        slow <= self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::AsyncResilient;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n7() -> SystemSize {
        SystemSize::new(7).unwrap()
    }

    #[test]
    fn fast_processes_keep_the_small_bound() {
        let n = n7();
        let p = SystemB::new(n, 1, 3);
        let mut rf = RoundFaults::none(n);
        // Three slow processes at the t-bound…
        rf.set(ProcessId::new(0), ids(&[1, 2, 3]));
        rf.set(ProcessId::new(1), ids(&[2, 3, 4]));
        rf.set(ProcessId::new(2), ids(&[3, 4, 5]));
        assert!(p.admits(&FaultPattern::new(n), &rf));
        // …a fourth is one too many.
        rf.set(ProcessId::new(3), ids(&[4, 5]));
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn nobody_may_exceed_t() {
        let n = n7();
        let p = SystemB::new(n, 1, 2);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(6), ids(&[0, 1, 2]));
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn a_is_a_strict_submodel_of_b() {
        let n = n7();
        let a = AsyncResilient::new(n, 1);
        let b = SystemB::new(n, 1, 2);
        let history = FaultPattern::new(n);

        // Every A-round is a B-round (Q = ∅ works).
        let mut a_round = RoundFaults::none(n);
        a_round.set(ProcessId::new(4), ids(&[5]));
        assert!(a.admits(&history, &a_round));
        assert!(b.admits(&history, &a_round));

        // Some B-round is not an A-round: strictness.
        let mut b_only = RoundFaults::none(n);
        b_only.set(ProcessId::new(0), ids(&[1, 2]));
        assert!(b.admits(&history, &b_only));
        assert!(!a.admits(&history, &b_only));
    }

    #[test]
    #[should_panic(expected = "f < t")]
    fn f_must_be_below_t() {
        let _ = SystemB::new(n7(), 2, 2);
    }

    #[test]
    #[should_panic(expected = "2t < n")]
    fn t_must_be_below_half_n() {
        let _ = SystemB::new(n7(), 1, 4);
    }
}
