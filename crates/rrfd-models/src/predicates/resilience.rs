//! Equation 3 of the paper: the **asynchronous message-passing** model with
//! at most `f` crash failures (§2 item 3).
//!
//! ```text
//! (∀ r > 0)(∀ p_i ∈ S)( |D(i,r)| ≤ f )
//! ```
//!
//! Every round, every process may miss at most `f` peers — the footprint of
//! "wait for n − f round-`r` messages". Unlike the synchronous predicates,
//! nothing is remembered across rounds: a process missed in one round may be
//! heard from in the next, and different processes may miss different peers.

use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

/// The asynchronous `f`-resilient predicate `P3`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::AsyncResilient;
///
/// let n = SystemSize::new(4).unwrap();
/// let p = AsyncResilient::new(n, 1);
/// let history = FaultPattern::new(n);
///
/// // Each process missing one (different!) peer per round is fine.
/// let rf = RoundFaults::from_sets(n, vec![
///     IdSet::singleton(ProcessId::new(1)),
///     IdSet::singleton(ProcessId::new(2)),
///     IdSet::singleton(ProcessId::new(3)),
///     IdSet::singleton(ProcessId::new(0)),
/// ]);
/// assert!(p.admits(&history, &rf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncResilient {
    n: SystemSize,
    f: usize,
}

impl AsyncResilient {
    /// Builds the predicate for `n` processes with resilience `f`.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n` (a process cannot be allowed to miss everyone,
    /// itself included, or rounds would never complete).
    #[must_use]
    pub fn new(n: SystemSize, f: usize) -> Self {
        assert!(f < n.get(), "resilience requires f < n");
        AsyncResilient { n, f }
    }

    /// The resilience bound `f`.
    #[must_use]
    pub fn f(self) -> usize {
        self.f
    }
}

impl RrfdPredicate for AsyncResilient {
    fn name(&self) -> String {
        format!("P3(async, f={})", self.f)
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, round: &RoundFaults) -> bool {
        round.iter().all(|(_, d)| d.len() <= self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn per_round_bound_is_enforced() {
        let p = AsyncResilient::new(n4(), 1);
        let mut rf = RoundFaults::none(n4());
        rf.set(ProcessId::new(0), ids(&[1, 2]));
        assert!(!p.admits(&FaultPattern::new(n4()), &rf));
        rf.set(ProcessId::new(0), ids(&[1]));
        assert!(p.admits(&FaultPattern::new(n4()), &rf));
    }

    #[test]
    fn no_memory_across_rounds() {
        // Cumulative misses may exceed f — only per-round size matters.
        let n = n4();
        let p = AsyncResilient::new(n, 1);
        let mut history = FaultPattern::new(n);
        for victim in 0..3 {
            let mut rf = RoundFaults::none(n);
            rf.set(ProcessId::new(3), ids(&[victim]));
            assert!(p.admits(&history, &rf));
            history.push(rf);
        }
        assert_eq!(history.cumulative_union().len(), 3);
    }

    #[test]
    fn self_suspicion_is_allowed() {
        // "We do not preclude p_i ∈ D(i,r)".
        let p = AsyncResilient::new(n4(), 1);
        let mut rf = RoundFaults::none(n4());
        rf.set(ProcessId::new(2), ids(&[2]));
        assert!(p.admits(&FaultPattern::new(n4()), &rf));
    }

    #[test]
    fn zero_resilience_means_no_misses() {
        let p = AsyncResilient::new(n4(), 0);
        assert!(p.admits(&FaultPattern::new(n4()), &RoundFaults::none(n4())));
        let mut rf = RoundFaults::none(n4());
        rf.set(ProcessId::new(0), ids(&[1]));
        assert!(!p.admits(&FaultPattern::new(n4()), &rf));
    }

    #[test]
    #[should_panic(expected = "f < n")]
    fn requires_f_below_n() {
        let _ = AsyncResilient::new(n4(), 4);
    }
}
