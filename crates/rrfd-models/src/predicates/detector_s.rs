//! §2 item 6: the asynchronous system augmented with the eventually-strong
//! failure detector **S** of Chandra-Toueg, as an RRFD.
//!
//! The natural predicate is "some process is never suspected by anyone":
//!
//! ```text
//! (∃ p_j)( p_j ∉ ∪_{r>0} ∪_{p_i∈S} D(i,r) )
//! ```
//!
//! which, as the paper observes, is equivalent to
//!
//! ```text
//! |∪_{r>0} ∪_{p_i∈S} D(i,r)| < n
//! ```
//!
//! — and that is exactly the send-omission predicate's footprint clause
//! with `f = n − 1`. "Thus we have reduced the existence of a wait-free
//! algorithm for S to the existence of an algorithm for consensus in item 1,
//! just by predicate manipulation." The equivalence is unit-tested below and
//! exercised in the E12 experiment.

use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate, SystemSize};

/// The detector-S predicate `P6`: fewer than `n` processes are ever
/// suspected, over the whole run.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::DetectorS;
///
/// let n = SystemSize::new(3).unwrap();
/// let p = DetectorS::new(n);
/// let mut rf = RoundFaults::none(n);
/// rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
/// rf.set(ProcessId::new(1), IdSet::singleton(ProcessId::new(0)));
/// // p2 remains immortal: admitted.
/// assert!(p.admits(&FaultPattern::new(n), &rf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorS {
    n: SystemSize,
}

impl DetectorS {
    /// Builds `P6` for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        DetectorS { n }
    }
}

impl RrfdPredicate for DetectorS {
    fn name(&self) -> String {
        "P6(detector-S)".to_owned()
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        let footprint = history.cumulative_union().union(round.union());
        footprint.len() < self.n.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{IdSet, ProcessId};

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n3() -> SystemSize {
        SystemSize::new(3).unwrap()
    }

    #[test]
    fn someone_must_stay_immortal() {
        let n = n3();
        let p = DetectorS::new(n);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[1]));
        r1.set(ProcessId::new(1), ids(&[2]));
        // Footprint {1,2}: p0 immortal.
        assert!(p.admits(&history, &r1));
        history.push(r1);

        // Suspecting p0 in a later round kills the last immortal.
        let mut r2 = RoundFaults::none(n);
        r2.set(ProcessId::new(2), ids(&[0]));
        assert!(!p.admits(&history, &r2));
    }

    #[test]
    fn suspicions_of_old_suspects_are_free() {
        let n = n3();
        let p = DetectorS::new(n);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[1, 2]));
        assert!(p.admits(&history, &r1));
        history.push(r1);
        let mut r2 = RoundFaults::none(n);
        r2.set(ProcessId::new(1), ids(&[1, 2]));
        assert!(p.admits(&history, &r2));
    }

    #[test]
    fn equivalence_with_send_omission_footprint() {
        // P6 ⇔ P1's footprint clause at f = n−1 (P1 additionally demands
        // self-trust; the *footprint* parts coincide). We check both
        // directions on random-ish hand-built patterns.
        use crate::predicates::SendOmission;
        let n = n3();
        let s = DetectorS::new(n);
        let omission = SendOmission::new(n, 2);

        // A self-trusting pattern admitted by one is admitted by the other.
        let history = FaultPattern::new(n);
        for sets in [
            vec![IdSet::empty(), IdSet::empty(), IdSet::empty()],
            vec![ids(&[1]), ids(&[0]), IdSet::empty()],
            vec![ids(&[1, 2]), ids(&[0]), ids(&[0, 1])],
        ] {
            let rf = RoundFaults::from_sets(n, sets);
            let self_trusting = rf.iter().all(|(i, d)| !d.contains(i));
            if self_trusting {
                assert_eq!(s.admits(&history, &rf), omission.admits(&history, &rf));
            }
        }
    }
}
