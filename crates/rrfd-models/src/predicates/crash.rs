//! Equations 1 + 2 of the paper: the synchronous **crash** model (§2 item 2).
//!
//! On top of the send-omission footprint bound (eq. 1), crashes are
//! *permanent and eventually universal*:
//!
//! ```text
//! (∀ r > 0)(∀ p_k ∈ S)( ∪_{p_i∈S} D(i,r)  ⊆  D(k, r+1) )
//! ```
//!
//! whoever was suspected by anyone in round `r` is suspected by everyone
//! from round `r+1` on. "It is thus explicit in the model definition that
//! the crash-fault model is a submodel of the send-omission-fault model."
//!
//! ### Reconciling eq. 1 and eq. 2
//!
//! Read literally, the two equations conflict: once `p_i` is suspected by
//! anyone, eq. 2 forces `p_i ∈ D(i, r+1)`, while eq. 1 forbids
//! self-suspicion. The intended reading (and the one the §1 prose supports:
//! "we do not preclude `p_i ∈ D(i,r)` … such a process may know the message
//! it sent through its local state") is that self-suspicion is forbidden
//! only for processes that have not crashed. [`Crash`] therefore requires
//! `p_i ∉ D(i,r)` only when `p_i` is outside the previous rounds' cumulative
//! union. This substitution is recorded in `DESIGN.md`.

use rrfd_core::{FaultPattern, IdSet, RoundFaults, RrfdPredicate, SystemSize};

/// The synchronous crash predicate `P2` with failure bound `f`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};
/// use rrfd_models::predicates::Crash;
///
/// let n = SystemSize::new(3).unwrap();
/// let p = Crash::new(n, 1);
/// let mut history = FaultPattern::new(n);
///
/// // Round 1: p0 alone notices p2's crash.
/// let mut r1 = RoundFaults::none(n);
/// r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
/// assert!(p.admits(&history, &r1));
/// history.push(r1);
///
/// // Round 2 must have *everyone* (p2 included) suspect p2.
/// assert!(!p.admits(&history, &RoundFaults::none(n)));
/// let all_suspect = RoundFaults::from_sets(
///     n,
///     vec![IdSet::singleton(ProcessId::new(2)); 3],
/// );
/// assert!(p.admits(&history, &all_suspect));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    n: SystemSize,
    f: usize,
}

impl Crash {
    /// Builds the predicate for `n` processes of which at most `f` may
    /// crash.
    ///
    /// # Panics
    ///
    /// Panics unless `f < n`.
    #[must_use]
    pub fn new(n: SystemSize, f: usize) -> Self {
        assert!(f < n.get(), "crash model requires f < n");
        Crash { n, f }
    }

    /// The failure bound `f`.
    #[must_use]
    pub fn f(self) -> usize {
        self.f
    }
}

impl RrfdPredicate for Crash {
    fn name(&self) -> String {
        format!("P2(crash, f={})", self.f)
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        let crashed_before = history.cumulative_union();

        // eq. 1, footprint bound.
        let footprint: IdSet = crashed_before.union(round.union());
        if footprint.len() > self.f {
            return false;
        }

        // eq. 1, self-trust — for processes not already crashed (see module
        // docs for the reconciliation).
        if round
            .iter()
            .any(|(i, d)| d.contains(i) && !crashed_before.contains(i))
        {
            return false;
        }

        // eq. 2: last round's union is suspected by everyone now. A
        // process is exempted from suspecting *itself* — whether a crashed
        // process's (unobservable) detector names the process itself is
        // immaterial, and demanding it would clash with the self-trust
        // clause (see the module docs).
        let Some(prev) = history.last() else {
            return true;
        };
        let prev_union = prev.union();
        round
            .iter()
            .all(|(k, d)| (prev_union - IdSet::singleton(k)).is_subset(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::SendOmission;
    use rrfd_core::ProcessId;

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn crashes_become_universal_next_round() {
        let n = n4();
        let p = Crash::new(n, 2);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(1), ids(&[3]));
        assert!(p.admits(&history, &r1));
        history.push(r1);

        // p0 not suspecting p3 in round 2 violates eq. 2.
        let mut partial = RoundFaults::none(n);
        partial.set(ProcessId::new(1), ids(&[3]));
        assert!(!p.admits(&history, &partial));

        let universal = RoundFaults::from_sets(n, vec![ids(&[3]); 4]);
        assert!(p.admits(&history, &universal));
    }

    #[test]
    fn crashed_process_may_suspect_itself() {
        let n = n4();
        let p = Crash::new(n, 1);
        let mut history = FaultPattern::new(n);
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[3]));
        history.push(r1);

        // Round 2: everyone (including p3 itself) suspects p3 — required,
        // and legal despite eq. 1's self-trust clause.
        let universal = RoundFaults::from_sets(n, vec![ids(&[3]); 4]);
        assert!(p.admits(&history, &universal));
    }

    #[test]
    fn uncrashed_self_suspicion_is_rejected() {
        let n = n4();
        let p = Crash::new(n, 2);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(2), ids(&[2]));
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn footprint_bound_still_applies() {
        let n = n4();
        let p = Crash::new(n, 1);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), ids(&[1, 2]));
        assert!(!p.admits(&FaultPattern::new(n), &rf));
    }

    #[test]
    fn crash_patterns_are_send_omission_patterns() {
        // The paper: crash is explicitly a submodel of send-omission.
        // Any crash-legal pattern whose crashed processes never self-suspect
        // before crashing is send-omission legal; here we check the
        // predicate implication directly on a staircase pattern.
        let n = n4();
        let crash = Crash::new(n, 2);
        let omission = SendOmission::new(n, 2);
        let mut history = FaultPattern::new(n);

        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[2]));
        assert!(crash.admits(&history, &r1) && omission.admits(&history, &r1));
        history.push(r1);

        let r2 = RoundFaults::from_sets(n, vec![ids(&[2]); 4]);
        assert!(crash.admits(&history, &r2));
        // r2 has p2 ∈ D(2,2); under the reconciled self-trust clause (see
        // module docs) the omission predicate admits it too, preserving the
        // paper's submodel claim.
        assert!(omission.admits(&history, &r2));
    }

    #[test]
    #[should_panic(expected = "f < n")]
    fn requires_f_below_n() {
        let _ = Crash::new(n4(), 7);
    }
}
