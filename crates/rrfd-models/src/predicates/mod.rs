//! The predicate zoo of Section 2 (plus §3's and §5's detectors).
//!
//! | Paper reference | Predicate |
//! |-----------------|-----------|
//! | §2 item 1, eq. 1 | [`SendOmission`] |
//! | §2 item 2, eq. 1+2 | [`Crash`] |
//! | §2 item 3, eq. 3 | [`AsyncResilient`] |
//! | §2 item 3, System B | [`SystemB`] |
//! | §2 item 4, eq. 3+4 | [`Swmr`] (clauses: [`SomeoneTrustedByAll`], [`AntiSymmetric`]) |
//! | §2 item 5 | [`Snapshot`] |
//! | §2 item 6 | [`DetectorS`] |
//! | §3, Thm 3.1 | [`KUncertainty`] |
//! | §5, eq. 5 | [`IdenticalViews`] |
//! | §7 future work: ◊S as an RRFD | [`EventuallyStrong`] |
//!
//! Each predicate is a standalone [`rrfd_core::RrfdPredicate`]; compound
//! models are built with [`rrfd_core::And`]. The submodel relations the
//! paper states (`A` is a submodel of `B` iff `P_A ⇒ P_B`) are validated in
//! [`crate::submodel`].

mod crash;
mod detector_s;
mod eventually_strong;
mod omission;
mod resilience;
mod snapshot;
mod swmr;
mod system_b;
mod uncertainty;

pub use crash::Crash;
pub use detector_s::DetectorS;
pub use eventually_strong::EventuallyStrong;
pub use omission::SendOmission;
pub use resilience::AsyncResilient;
pub use snapshot::Snapshot;
pub use swmr::{AntiSymmetric, SomeoneTrustedByAll, Swmr};
pub use system_b::SystemB;
pub use uncertainty::{IdenticalViews, KUncertainty};
