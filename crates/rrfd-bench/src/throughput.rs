//! The batch-throughput harness behind `--bin serve` and the report's
//! `throughput` section.
//!
//! [`measure_throughput`] runs one mix twice through the sharded pool —
//! an instrumented pass that fills the [`rrfd_obs`] per-step latency
//! histogram (for the p99), then an uninstrumented timed pass — and once
//! through the naive one-`Engine::run`-per-instance sequential baseline,
//! and reduces the three to a [`ThroughputRow`]: instances/sec, p99
//! round latency, and the batch-over-sequential speedup. Both bench
//! binaries consume the same row, so `serve` output and
//! `BENCH_rrfd.json` cannot drift apart.

use rrfd_engine_pool::{run_batch, run_sequential, MixSpec, PoolConfig};
use rrfd_obs::{json, names, Labels, MetricValue, Obs};

/// One throughput measurement, ready to print or serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputRow {
    /// The mix spec string the batch ran (`kset:n=8:k=2:w=2,...`).
    pub mix: String,
    /// Instances requested.
    pub instances: u64,
    /// Pool shards (worker threads).
    pub shards: usize,
    /// Instances that decided.
    pub completed: u64,
    /// Instances retired by an engine error (the mix's stall class).
    pub errored: u64,
    /// Engine rounds executed by deciding instances.
    pub rounds: u64,
    /// Wall nanoseconds for the uninstrumented batch pass.
    pub batch_ns: u64,
    /// Wall nanoseconds for the sequential baseline.
    pub sequential_ns: u64,
    /// `instances / batch_ns`, scaled to instances per second.
    pub instances_per_sec: u64,
    /// p99 of one multiplexed engine step (one instance, one round), in
    /// wall nanoseconds, from the instrumented pass's histogram.
    pub p99_round_ns: u64,
    /// `sequential_ns * 100 / batch_ns` — `200` means the pool retired
    /// the batch twice as fast as the sequential loop.
    pub speedup_x100: u64,
}

/// Measures `mix` at `instances` across `shards`, against the
/// sequential baseline. Deterministic in its decisions (fixed `seed`);
/// the timings are wall-clock.
#[must_use]
pub fn measure_throughput(
    mix: &MixSpec,
    instances: u64,
    shards: usize,
    seed: u64,
) -> ThroughputRow {
    let clock = Obs::wall();

    // Instrumented pass: fills the per-step latency histogram. Timed
    // separately from the throughput pass so recorder and clock-read
    // overhead never pollutes the instances/sec number.
    let obs = Obs::wall();
    let instrumented = PoolConfig::new(shards).seed(seed).obs(obs.clone());
    let report = run_batch(mix, instances, &instrumented);
    let p99_round_ns = match obs
        .snapshot()
        .get(names::POOL_ROUND_LATENCY, Labels::GLOBAL)
    {
        Some(MetricValue::Histogram(h)) => h.quantile(0.99).unwrap_or(0),
        _ => 0,
    };

    let start = clock.now_ns();
    let timed = run_batch(mix, instances, &PoolConfig::new(shards).seed(seed));
    let batch_ns = clock.now_ns().saturating_sub(start).max(1);
    // Decisions are deterministic in (mix, instances, seed), so the two
    // batch passes must agree; a mismatch means the pool lost purity.
    debug_assert_eq!(timed.completed, report.completed);

    let start = clock.now_ns();
    let sequential = run_sequential(mix, instances, &PoolConfig::new(1).seed(seed));
    let sequential_ns = clock.now_ns().saturating_sub(start).max(1);
    debug_assert_eq!(sequential.completed, report.completed);

    let instances_per_sec =
        u64::try_from(u128::from(instances) * 1_000_000_000 / u128::from(batch_ns))
            .unwrap_or(u64::MAX);
    let speedup_x100 =
        u64::try_from(u128::from(sequential_ns) * 100 / u128::from(batch_ns)).unwrap_or(u64::MAX);
    ThroughputRow {
        mix: mix.to_string(),
        instances,
        shards,
        completed: report.completed,
        errored: report.errored,
        rounds: report.rounds,
        batch_ns,
        sequential_ns,
        instances_per_sec,
        p99_round_ns,
        speedup_x100,
    }
}

/// Renders the row as the report's one-line `"throughput"` section
/// (including the two-space indent and trailing comma the `rrfd-bench
/// v1` layout uses).
#[must_use]
pub fn render_throughput_line(row: &ThroughputRow) -> String {
    format!(
        "  \"throughput\": {{\"mix\": \"{}\", \"instances\": {}, \"shards\": {}, \
         \"completed\": {}, \"errored\": {}, \"rounds\": {}, \"batch_ns\": {}, \
         \"sequential_ns\": {}, \"instances_per_sec\": {}, \"p99_round_ns\": {}, \
         \"speedup_x100\": {}}},",
        json::escape(&row.mix),
        row.instances,
        row.shards,
        row.completed,
        row.errored,
        row.rounds,
        row.batch_ns,
        row.sequential_ns,
        row.instances_per_sec,
        row.p99_round_ns,
        row.speedup_x100,
    )
}

/// Replaces the `"throughput"` line of a rendered `rrfd-bench v1`
/// report with `line`, or inserts it before the `"msg_plane"` section
/// when the file predates the section. Errors when the text has neither
/// anchor (not a v1 report).
pub fn splice_throughput(report_text: &str, line: &str) -> Result<String, String> {
    let mut lines: Vec<&str> = report_text.lines().collect();
    if let Some(i) = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"throughput\":"))
    {
        lines[i] = line;
    } else if let Some(i) = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"msg_plane\":"))
    {
        lines.insert(i, line);
    } else {
        return Err("no `throughput` or `msg_plane` section to anchor on".to_owned());
    }
    let mut out = lines.join("\n");
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_accounts_for_every_instance() {
        let mix = MixSpec::default_mix();
        let row = measure_throughput(&mix, 45, 2, 7);
        assert_eq!(row.completed + row.errored, 45);
        assert_eq!(row.instances, 45);
        assert_eq!(row.shards, 2);
        assert_eq!(row.mix, MixSpec::DEFAULT_SPEC);
        assert!(row.instances_per_sec > 0);
        assert!(row.batch_ns > 0 && row.sequential_ns > 0);
        assert!(
            row.p99_round_ns > 0,
            "instrumented pass must fill the histogram"
        );
    }

    fn sample_row() -> ThroughputRow {
        ThroughputRow {
            mix: "kset:n=4:k=1:w=1".to_owned(),
            instances: 10,
            shards: 2,
            completed: 10,
            errored: 0,
            rounds: 10,
            batch_ns: 500,
            sequential_ns: 1500,
            instances_per_sec: 20_000_000,
            p99_round_ns: 40,
            speedup_x100: 300,
        }
    }

    #[test]
    fn splice_replaces_existing_section() {
        let report = "{\n  \"throughput\": {\"old\": 1},\n  \"msg_plane\": [\n  ]\n}\n";
        let line = render_throughput_line(&sample_row());
        let updated = splice_throughput(report, &line).unwrap();
        assert!(updated.contains("\"speedup_x100\": 300"));
        assert!(!updated.contains("\"old\": 1"));
        assert_eq!(updated.lines().count(), report.lines().count());
    }

    #[test]
    fn splice_inserts_before_msg_plane_when_missing() {
        let report = "{\n  \"explore\": {},\n  \"msg_plane\": [\n  ]\n}\n";
        let line = render_throughput_line(&sample_row());
        let updated = splice_throughput(report, &line).unwrap();
        let tp = updated
            .lines()
            .position(|l| l.trim_start().starts_with("\"throughput\":"))
            .unwrap();
        let mp = updated
            .lines()
            .position(|l| l.trim_start().starts_with("\"msg_plane\":"))
            .unwrap();
        assert!(tp < mp);
    }

    #[test]
    fn splice_rejects_unanchored_text() {
        assert!(splice_throughput("not a report\n", "x").is_err());
    }
}
