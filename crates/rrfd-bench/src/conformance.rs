//! The bench reporter's `conformance` section: live zoo conformance at
//! batch scale, cross-checked against offline replay.
//!
//! [`measure_conformance`] runs one mix through the sharded pool with
//! per-instance [`rrfd_models::conformance::ConformanceMonitor`]s
//! attached (and traces captured), folds the verdicts per class, and —
//! the part that makes the section trustworthy — recomputes every
//! instance's verdict *offline* from its captured [`RunTrace`] by
//! replaying each zoo predicate over fault-pattern prefixes. The
//! `online_offline_agree` bit in the report is that differential check
//! at batch scale: the incremental monitor and the from-scratch prefix
//! replay must name the same strongest surviving predicate and the same
//! first-violation rounds for every instance.

use rrfd_core::{FaultPattern, RunTrace};
use rrfd_engine_pool::{run_batch, ClassConformance, InstanceConformance, MixSpec, PoolConfig};
use rrfd_models::zoo::{zoo, ZOO_SIZE, ZOO_STRENGTH_RANK};
use rrfd_obs::json;

/// The resilience the pool's monitors use (`zoo(n, 1)`); the offline
/// replay must check the same family.
const CONF_ZOO_F: usize = 1;

/// The report's `conformance` section, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceSection {
    /// Predicates in the monitored family (the 13-member zoo).
    pub zoo_size: usize,
    /// `true` when every instance's online verdict matched the offline
    /// prefix-replay recomputation from its captured trace.
    pub online_offline_agree: bool,
    /// Instances whose verdicts were cross-checked offline.
    pub checked: u64,
    /// Per-class folded verdicts, in mix order.
    pub classes: Vec<ClassConformance>,
    /// Post-mortem flight captures from shards whose instances errored
    /// mid-batch (the pass runs with the flight recorder armed). Not
    /// part of the rendered JSON block — `serve` surfaces these on
    /// stderr.
    pub flight_dumps: Vec<String>,
}

/// Recomputes an instance's zoo verdict from scratch: each predicate
/// replayed over the trace's fault-pattern prefixes, first rejection
/// recorded. This is the offline half of the differential check — it
/// shares no code with the incremental monitor beyond the predicates
/// themselves.
#[must_use]
pub fn offline_conformance(trace: &RunTrace) -> InstanceConformance {
    let n = trace.system_size();
    let family = zoo(n, CONF_ZOO_F);
    let mut firsts: Vec<Option<u32>> = vec![None; family.len()];
    for (idx, predicate) in family.iter().enumerate() {
        let mut prefix = FaultPattern::new(n);
        for (r, round) in trace.rounds().iter().enumerate() {
            if firsts[idx].is_none() && !predicate.admits(&prefix, &round.faults) {
                firsts[idx] = Some(r as u32 + 1);
            }
            prefix.push(round.faults.clone());
        }
    }
    let strongest = family
        .iter()
        .enumerate()
        .filter(|(idx, _)| firsts[*idx].is_none())
        .map(|(idx, p)| (p.name(), ZOO_STRENGTH_RANK[idx]))
        .min_by_key(|(_, rank)| *rank);
    let violations = family
        .iter()
        .enumerate()
        .filter_map(|(idx, p)| firsts[idx].map(|r| (p.name(), r)))
        .collect();
    InstanceConformance {
        strongest,
        violations,
    }
}

/// Measures `mix` at `instances` across `shards` with conformance
/// monitoring on, and cross-checks every captured verdict offline.
/// Decisions are deterministic in (mix, instances, seed).
#[must_use]
pub fn measure_conformance(
    mix: &MixSpec,
    instances: u64,
    shards: usize,
    seed: u64,
) -> ConformanceSection {
    let config = PoolConfig::new(shards)
        .seed(seed)
        .conformance(true)
        .flight(true)
        .capture_traces(true)
        .keep_results(true);
    let report = run_batch(mix, instances, &config);
    let mut agree = true;
    let mut checked = 0u64;
    for result in &report.results {
        let (Some(trace), Some(online)) = (&result.trace, &result.conformance) else {
            continue;
        };
        checked += 1;
        if &offline_conformance(trace) != online {
            agree = false;
        }
    }
    ConformanceSection {
        zoo_size: ZOO_SIZE,
        online_offline_agree: agree,
        checked,
        classes: report.conformance,
        flight_dumps: report.flight_dumps,
    }
}

/// Renders the section as the report's multi-line `"conformance"` block
/// (two-space indent, trailing comma, matching the `rrfd-bench v1`
/// layout).
#[must_use]
pub fn render_conformance_block(section: &ConformanceSection) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  \"conformance\": {{\"zoo_size\": {}, \"online_offline_agree\": {}, \
         \"checked\": {}, \"classes\": [\n",
        section.zoo_size, section.online_offline_agree, section.checked,
    ));
    for (i, class) in section.classes.iter().enumerate() {
        let worst_name = match &class.worst_name {
            Some(name) => format!("\"{}\"", json::escape(name)),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"instances\": {}, \"clean\": {}, \
             \"worst_rank\": {}, \"worst_name\": {}}}{}\n",
            json::escape(&class.class),
            class.instances,
            class.clean,
            class.worst_rank,
            worst_name,
            if i + 1 < section.classes.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]},");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_verdicts_agree_with_offline_replay() {
        let mix = MixSpec::default_mix();
        let section = measure_conformance(&mix, 60, 2, 0xC0FF);
        assert_eq!(section.zoo_size, ZOO_SIZE);
        assert!(section.checked > 0, "no instance was cross-checked");
        assert!(
            section.online_offline_agree,
            "online monitor diverged from offline prefix replay"
        );
        assert!(!section.classes.is_empty());
        for class in &section.classes {
            assert!(class.clean <= class.instances, "{class:?}");
        }
        // The default mix's stall class errors mid-batch, and the pass
        // runs with the flight recorder armed — the post-mortem dumps
        // must have been captured.
        assert!(
            section
                .flight_dumps
                .iter()
                .all(|d| d.starts_with("rrfd-flight v1")),
            "malformed flight dump"
        );
        assert!(!section.flight_dumps.is_empty(), "stall class left no dump");
    }

    #[test]
    fn rendered_block_parses_as_json() {
        let mix = MixSpec::default_mix();
        let section = measure_conformance(&mix, 30, 2, 7);
        let block = render_conformance_block(&section);
        // Strip the layout's trailing comma and parse the object.
        let object = block.trim_end().trim_end_matches(',').trim_start();
        let object = object.trim_start_matches("\"conformance\": ");
        let parsed = json::parse(object).expect("block parses");
        assert_eq!(
            parsed.get("zoo_size").and_then(json::Json::as_u64),
            Some(ZOO_SIZE as u64)
        );
        assert!(parsed
            .get("classes")
            .and_then(json::Json::as_array)
            .is_some());
    }
}
