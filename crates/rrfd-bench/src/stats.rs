//! Sample statistics shared by the bench binaries.
//!
//! One function, one definition: every quantile the workspace reports
//! (experiment medians, p95s, the throughput harness's p99) flows
//! through [`quantile`], so a fix here fixes every report at once.

/// The `q`-quantile of an ascending-sorted sample by **ceiling
/// nearest-rank**: the smallest element `x` such that at least `q·N` of
/// the sample is `≤ x`, i.e. `sorted[⌈q·N⌉ - 1]` (rank clamped to
/// `[1, N]`). Returns `0` for an empty sample.
///
/// The ceiling rank is the textbook nearest-rank estimator. The previous
/// implementation rounded `q·(N-1)` to the *nearest* index, which
/// over-reports low quantiles (for `1..=10` it called `6` the median —
/// 60% of the sample is `≤ 6`) and, at high `q` on small `N`, could pick
/// an element below the requested coverage. See the pinned tests.
#[must_use]
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    let len = sorted.len();
    if len == 0 {
        return 0;
    }
    let rank = (q * len as f64).ceil() as usize;
    // `rank` is 1-based; clamp covers q <= 0 (rank 0) and q >= 1 or
    // float overshoot (rank > N).
    match sorted.get(rank.clamp(1, len) - 1) {
        Some(&value) => value,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::quantile;

    #[test]
    fn quantiles_pinned_on_1_to_10() {
        let v: Vec<u64> = (1..=10).collect();
        // ceil(0.5 * 10) = 5 → 5. (The old round-based rank said 6.)
        assert_eq!(quantile(&v, 0.5), 5);
        // ceil(0.95 * 10) = 10 → 10. (The old rank said 9: only 90% of
        // the sample was ≤ the reported "p95".)
        assert_eq!(quantile(&v, 0.95), 10);
        assert_eq!(quantile(&v, 0.99), 10);
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 1.0), 10);
    }

    #[test]
    fn quantiles_pinned_on_1_to_20() {
        let v: Vec<u64> = (1..=20).collect();
        assert_eq!(quantile(&v, 0.5), 10);
        assert_eq!(quantile(&v, 0.95), 19);
        assert_eq!(quantile(&v, 0.99), 20);
    }

    #[test]
    fn quantiles_pinned_on_1_to_100() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.5), 50);
        assert_eq!(quantile(&v, 0.95), 95);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&v, 1.0), 100);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[7], 0.99), 7);
        assert_eq!(quantile(&[3, 9], 0.5), 3);
        assert_eq!(quantile(&[3, 9], 0.51), 9);
    }
}
