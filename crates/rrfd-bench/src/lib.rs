//! Shared helpers for the Criterion benches in `benches/`.
//!
//! Each bench regenerates one experiment row from `EXPERIMENTS.md`; the
//! helpers here keep workload construction identical across benches so the
//! measured shapes are comparable.

/// Standard system sizes swept by the experiment benches.
pub const SYSTEM_SIZES: &[usize] = &[4, 8, 16, 32, 64];

/// Standard agreement parameters `k` swept by the k-set experiments.
pub const KS: &[usize] = &[1, 2, 4, 8];

/// Deterministic seed base so bench runs are reproducible.
pub const SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Builds the canonical input vector used by every agreement workload:
/// distinct values `1000 + i` so validity violations are detectable.
pub fn agreement_inputs(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 1000 + i).collect()
}

/// Criterion configuration shared by every experiment bench: short
/// measurement windows so the full `cargo bench` sweep stays tractable
/// while remaining statistically useful for the shapes we report.
#[must_use]
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}
