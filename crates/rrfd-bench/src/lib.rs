//! Shared helpers for the Criterion benches in `benches/`.
//!
//! Each bench regenerates one experiment row from `EXPERIMENTS.md`; the
//! helpers here keep workload construction identical across benches so the
//! measured shapes are comparable.
//!
//! Also home of [`ClonePlaneEngine`], the seed-faithful per-recipient-clone
//! round engine kept as the ablation baseline for the zero-copy message
//! plane (and as the reference semantics the differential equivalence
//! tests compare against); of [`stats`], the one quantile definition all
//! bench binaries share; of [`throughput`], the batch-throughput
//! harness behind `--bin serve` and the report's `throughput` section;
//! and of [`conformance`], the zoo-conformance measurement behind the
//! report's `conformance` section and its online/offline differential
//! check.

pub mod conformance;
pub mod stats;
pub mod throughput;

pub use conformance::{
    measure_conformance, offline_conformance, render_conformance_block, ConformanceSection,
};
pub use stats::quantile;
pub use throughput::{
    measure_throughput, render_throughput_line, splice_throughput, ThroughputRow,
};

use rrfd_core::{validate_round, IdSet};
use rrfd_core::{
    Control, Delivery, EngineError, FaultDetector, FaultPattern, ProcessId, Round, RoundProtocol,
    RrfdPredicate, RunReport, RunTrace, SystemSize, TraceBuilder, TraceOutcome,
};
use rrfd_obs::{names, Labels, Obs};

/// Full-information flood with a *deep* payload, built for the
/// message-plane ablation: every round each process re-broadcasts its
/// knowledge — a known-sender [`IdSet`] plus its whole value table
/// (`Vec<u64>` of length `n`) — and merges exactly the tables that carry
/// information it does not already have (the same subset gate the COW
/// [`rrfd_core::KnowledgeState`] uses for `Arc::make_mut`). It decides
/// the table sum after a fixed round count.
///
/// The gate is what makes the ablation sharp: in a crash-free run
/// knowledge saturates after two rounds, so a steady-state round costs
/// the shared-table plane `n²` subset checks while the clone plane keeps
/// deep-copying `n²` tables of length `n` it will then discard — exactly
/// the copy volume `benches/msg_plane.rs` and the report's `msg_plane`
/// section measure. (Contrast [`rrfd_core::KnowledgeProtocol`], whose
/// `Arc` messages are cheap to clone by design; this type exists because
/// the ablation needs a payload that is *expensive* when cloned.)
#[derive(Debug, Clone)]
pub struct FullInfoFlood {
    known: IdSet,
    values: Vec<u64>,
    rounds: u32,
}

impl FullInfoFlood {
    /// Creates the process `me` of `n` with the given input, deciding
    /// after `rounds` rounds.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, input: u64, rounds: u32) -> Self {
        let mut values = vec![0; n.get()];
        if let Some(slot) = values.get_mut(me.index()) {
            *slot = input;
        }
        FullInfoFlood {
            known: IdSet::singleton(me),
            values,
            rounds,
        }
    }
}

impl RoundProtocol for FullInfoFlood {
    type Msg = (IdSet, Vec<u64>);
    type Output = u64;

    fn emit(&mut self, _round: Round) -> (IdSet, Vec<u64>) {
        (self.known, self.values.clone())
    }

    fn deliver(&mut self, d: Delivery<'_, (IdSet, Vec<u64>)>) -> Control<u64> {
        for (who, table) in d.values() {
            if who.is_subset(self.known) {
                continue; // nothing new: the COW-style fast path
            }
            self.known |= *who;
            for (slot, v) in self.values.iter_mut().zip(table) {
                *slot = (*slot).max(*v);
            }
        }
        if d.round.get() >= self.rounds {
            Control::Decide(self.values.iter().copied().sum())
        } else {
            Control::Continue
        }
    }
}

/// Standard system sizes swept by the experiment benches.
pub const SYSTEM_SIZES: &[usize] = &[4, 8, 16, 32, 64];

/// Standard agreement parameters `k` swept by the k-set experiments.
pub const KS: &[usize] = &[1, 2, 4, 8];

/// Deterministic seed base so bench runs are reproducible.
pub const SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Builds the canonical input vector used by every agreement workload:
/// distinct values `1000 + i` so validity violations are detectable.
pub fn agreement_inputs(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 1000 + i).collect()
}

/// Criterion configuration shared by every experiment bench: short
/// measurement windows so the full `cargo bench` sweep stays tractable
/// while remaining statistically useful for the shapes we report.
#[must_use]
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

/// The pre-zero-copy round engine: every recipient gets its *own*
/// `Vec<Option<Msg>>` built by cloning each visible message out of the
/// round's emission table — `O(n²)` payload clones per round, the seed's
/// delivery semantics exactly.
///
/// Kept out of `rrfd-core` on purpose: it exists only as the ablation
/// baseline for `benches/msg_plane.rs` / the `msg_plane` report section,
/// and as the reference side of the differential equivalence suite
/// (`tests/msg_plane_equivalence.rs`), which proves the shared-table
/// engine produces byte-identical traces and identical decisions.
///
/// Deep-copy volume is observable: with an [`Obs`] attached it records
/// `rrfd_engine_msg_bytes_cloned_total` (shallow `size_of::<Msg>()` per
/// cloned payload) and never touches
/// `rrfd_engine_deliveries_shared_total`, the zero-copy engine's counter.
#[derive(Debug, Clone)]
pub struct ClonePlaneEngine {
    n: SystemSize,
    max_rounds: u32,
    obs: Obs,
}

impl ClonePlaneEngine {
    /// Creates a clone-plane engine with the default round limit of
    /// [`rrfd_core::DEFAULT_MAX_ROUNDS`].
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        ClonePlaneEngine {
            n,
            max_rounds: rrfd_core::DEFAULT_MAX_ROUNDS,
            obs: Obs::noop(),
        }
    }

    /// Sets the maximum number of rounds before the run is abandoned.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Attaches an observability handle (see [`rrfd_core::Engine::obs`]).
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Clone-plane counterpart of [`rrfd_core::Engine::run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`rrfd_core::Engine::run`].
    pub fn run<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> Result<RunReport<P::Output>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        self.run_inner(protocols, detector, model, None).0
    }

    /// Clone-plane counterpart of [`rrfd_core::Engine::run_traced`]: the
    /// trace calls mirror the zero-copy engine's exactly, so traces from
    /// the two planes are comparable byte for byte.
    pub fn run_traced<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> (Result<RunReport<P::Output>, EngineError>, RunTrace)
    where
        P: RoundProtocol,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        let mut trace = TraceBuilder::new(self.n);
        let (result, outcome) = self.run_inner(protocols, detector, model, Some(&mut trace));
        (result, trace.finish(outcome))
    }

    fn run_inner<P, D, Q>(
        &self,
        mut protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
        mut trace: Option<&mut TraceBuilder>,
    ) -> (Result<RunReport<P::Output>, EngineError>, TraceOutcome)
    where
        P: RoundProtocol,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        if protocols.len() != self.n.get() {
            return (
                Err(EngineError::WrongProcessCount {
                    supplied: protocols.len(),
                    expected: self.n.get(),
                }),
                TraceOutcome::Aborted,
            );
        }

        let n = self.n.get();
        let msg_size = std::mem::size_of::<P::Msg>() as u64;
        let mut pattern = FaultPattern::new(self.n);
        let mut decisions: Vec<Option<(P::Output, Round)>> = vec![None; n];

        for round_no in 1..=self.max_rounds {
            let round = Round::new(round_no);
            let span = self.obs.round_enter(Labels::round(round_no));

            let messages: Vec<Option<P::Msg>> =
                protocols.iter_mut().map(|p| Some(p.emit(round))).collect();
            self.obs
                .add(names::ENGINE_ROUNDS, Labels::round(round_no), 1);
            self.obs.add(
                names::ENGINE_MESSAGES_EMITTED,
                Labels::round(round_no),
                n as u64,
            );

            let faults = detector.next_round(round, &pattern);
            if let Err(violation) = validate_round(model, &pattern, &faults) {
                self.obs
                    .add(names::ENGINE_VIOLATIONS, Labels::round(round_no), 1);
                self.obs.round_exit(names::ENGINE_ROUND_LATENCY, span);
                if let Some(t) = trace.as_deref_mut() {
                    t.record_violating_round(faults);
                }
                return (
                    Err(violation.clone().into()),
                    TraceOutcome::Violation(violation),
                );
            }

            let mut heard: Option<Vec<IdSet>> = trace.is_some().then(|| Vec::with_capacity(n));
            for (i, protocol) in protocols.iter_mut().enumerate() {
                let me = ProcessId::new(i);
                let suspected = faults.of(me);
                // The seed plane: a fresh per-recipient vector, each
                // visible message deep-copied out of the emission table.
                let received: Vec<Option<P::Msg>> = messages
                    .iter()
                    .enumerate()
                    .map(|(j, m)| {
                        if suspected.contains(ProcessId::new(j)) {
                            None
                        } else {
                            m.clone()
                        }
                    })
                    .collect();
                let delivery = Delivery::new(round, me, &received, suspected);
                let heard_set = delivery.heard_from();
                if self.obs.is_enabled() {
                    let labels = Labels::process_round(i, round_no);
                    self.obs.add(
                        names::ENGINE_MESSAGES_RECEIVED,
                        labels,
                        heard_set.len() as u64,
                    );
                    self.obs.add(
                        names::ENGINE_MSG_BYTES_CLONED,
                        labels,
                        heard_set.len() as u64 * msg_size,
                    );
                    self.obs
                        .observe(names::ENGINE_HEARD_SIZE, labels, heard_set.len() as u64);
                    self.obs
                        .observe(names::ENGINE_SUSPICION_SIZE, labels, suspected.len() as u64);
                }
                if let Some(h) = heard.as_mut() {
                    h.push(heard_set);
                }
                if let Control::Decide(value) = protocol.deliver(delivery) {
                    if decisions[i].is_none() {
                        decisions[i] = Some((value, round));
                        if let Some(t) = trace.as_deref_mut() {
                            t.record_decision(me, round);
                        }
                        self.obs.add(
                            names::ENGINE_DECISIONS,
                            Labels::process_round(i, round_no),
                            1,
                        );
                    }
                }
            }

            if let (Some(t), Some(h)) = (trace.as_deref_mut(), heard.take()) {
                t.record_round(&faults, h);
            }
            pattern.push(faults);
            self.obs.round_exit(names::ENGINE_ROUND_LATENCY, span);

            if decisions.iter().all(Option::is_some) {
                return (
                    Ok(RunReport {
                        decisions,
                        pattern,
                        rounds_executed: round_no,
                    }),
                    TraceOutcome::Decided {
                        rounds_executed: round_no,
                    },
                );
            }
        }

        (
            Err(EngineError::RoundLimitExceeded {
                max_rounds: self.max_rounds,
            }),
            TraceOutcome::RoundLimit {
                max_rounds: self.max_rounds,
            },
        )
    }
}
