//! The machine-readable bench reporter: runs a compact E-series workload
//! sweep, timing each experiment (median / p95 wall nanoseconds) and
//! capturing its `rrfd_*` metric totals from one instrumented run, then
//! writes everything as `BENCH_rrfd.json` (format `rrfd-bench v1`).
//!
//! ```text
//! cargo run -p rrfd-bench --bin report --release -- \
//!     [--quick] [--out PATH] [--assert-overhead X]
//! cargo run -p rrfd-bench --bin report -- --check-schema PATH
//! ```
//!
//! `--quick` shrinks sample counts for CI smoke runs; `--check-schema`
//! validates an existing report file against the `rrfd-bench v1` schema
//! (via the dependency-free `rrfd_obs::json` reader) without running any
//! workload. The report also includes an `overhead` section comparing the
//! same engine workload uninstrumented, with the no-op recorder, and with
//! the sharded recorder — the "disabled instrumentation is free" claim as
//! a number; `--assert-overhead X` turns that claim into an exit code by
//! failing when the triple leaves the envelope (noop within `X`× of
//! baseline, sharded within `10·X`×). A `conformance` section reports
//! live zoo conformance at batch scale with every online verdict
//! cross-checked against offline prefix replay.

use rrfd_bench::{
    measure_conformance, measure_throughput, quantile, render_conformance_block,
    render_throughput_line, ClonePlaneEngine, FullInfoFlood,
};
use rrfd_core::{AnyPattern, Engine, SystemSize};
use rrfd_engine_pool::MixSpec;
use rrfd_models::adversary::{NoFailures, RandomAdversary, SilencingCrash, StaggeredCrash};
use rrfd_models::predicates::{Crash, DetectorS, KUncertainty};
use rrfd_obs::{json, Obs};
use rrfd_protocols::adopt_commit::run_adopt_commit;
use rrfd_protocols::early_stopping::EarlyStoppingConsensus;
use rrfd_protocols::kset::{FloodMin, OneRoundKSet, SnapshotKSet};
use rrfd_protocols::s_consensus::SRotatingConsensus;
use rrfd_protocols::semi_sync_consensus::TwoStepConsensus;
use rrfd_runtime::{MetricsSink, ThreadedEngine};
use rrfd_sims::digest::{DigestWriter, StateDigest};
use rrfd_sims::explore::explore_schedules_checked;
use rrfd_sims::explore_par::{explore_shared_mem_par, no_fingerprint, ParConfig};
use rrfd_sims::instrument::Instrumented;
use rrfd_sims::semi_sync::{RandomSemiSync, SemiSyncSim};
use rrfd_sims::shared_mem::{Action, MemProcess, Observation, RandomScheduler, SharedMemSim};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const FORMAT: &str = "rrfd-bench v1";
const SEED: u64 = 0x5EED_CAFE_F00D_0002;

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).expect("valid size")
}

fn inputs(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 1000 + i).collect()
}

/// One E-series workload: a name plus a closure that runs it once,
/// recording into `obs` wherever the substrate has an instrumentation
/// seam (engine builder, scheduler wrapper, runtime sink).
struct Workload {
    name: &'static str,
    run: Box<dyn Fn(&Obs)>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "e3_one_round_kset",
            run: Box::new(|obs| {
                let size = n(8);
                let (k, ins) = (2usize, inputs(8));
                let model = KUncertainty::new(size, k);
                let protos: Vec<_> = ins.iter().map(|&v| OneRoundKSet::new(v)).collect();
                let mut adv = RandomAdversary::new(model, SEED);
                Engine::new(size)
                    .obs(obs.clone())
                    .run(protos, &mut adv, &model)
                    .expect("e3 run");
            }),
        },
        Workload {
            name: "e4_snapshot_kset",
            run: Box::new(|obs| {
                let size = n(8);
                let (k, ins) = (3usize, inputs(8));
                let procs: Vec<_> = ins.iter().map(|&v| SnapshotKSet::new(size, k, v)).collect();
                let mut sched = Instrumented::new(
                    RandomScheduler::new(SEED, k - 1).crash_prob(0.04),
                    obs.clone(),
                );
                SharedMemSim::new(size, 1)
                    .with_snapshots()
                    .run(procs, &mut sched)
                    .expect("e4 run");
            }),
        },
        Workload {
            name: "e7_adopt_commit",
            run: Box::new(|obs| {
                let size = n(8);
                let ins: Vec<u64> = (0..8).collect();
                let mut sched = Instrumented::new(RandomScheduler::new(SEED, 0), obs.clone());
                run_adopt_commit(size, &ins, &mut sched).expect("e7 run");
            }),
        },
        Workload {
            name: "e9_lower_bound",
            run: Box::new(|obs| {
                let size = n(10);
                let (f, k) = (4usize, 2usize);
                let model = Crash::new(size, f);
                let protos: Vec<_> = (0..10u64)
                    .map(|v| FloodMin::new(v, (f / k) as u32 + 1))
                    .collect();
                let mut adv = SilencingCrash::new(size, f, k);
                Engine::new(size)
                    .obs(obs.clone())
                    .run(protos, &mut adv, &model)
                    .expect("e9 run");
            }),
        },
        Workload {
            name: "e10_semi_sync",
            run: Box::new(|obs| {
                let size = n(8);
                let ins = inputs(8);
                let procs: Vec<_> = size
                    .processes()
                    .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                    .collect();
                let mut sched =
                    Instrumented::new(RandomSemiSync::new(SEED, 7).crash_prob(0.05), obs.clone());
                SemiSyncSim::new(size)
                    .run(procs, &mut sched)
                    .expect("e10 run");
            }),
        },
        Workload {
            name: "e13_runtime",
            run: Box::new(|obs| {
                let size = n(4);
                let (k, ins) = (2usize, inputs(4));
                let model = KUncertainty::new(size, k);
                let protos: Vec<_> = ins.iter().map(|&v| OneRoundKSet::new(v)).collect();
                let mut adv = RandomAdversary::new(model, SEED);
                ThreadedEngine::new(size)
                    .obs(obs.clone())
                    .sink(Arc::new(MetricsSink::new(obs.clone())))
                    .run(protos, &mut adv, &model)
                    .expect("e13 run");
            }),
        },
        Workload {
            name: "e16_s_consensus",
            run: Box::new(|obs| {
                let size = n(6);
                let ins = inputs(6);
                let model = DetectorS::new(size);
                let protos: Vec<_> = ins
                    .iter()
                    .map(|&v| SRotatingConsensus::new(size, v))
                    .collect();
                let mut adv = RandomAdversary::new(model, SEED);
                Engine::new(size)
                    .obs(obs.clone())
                    .run(protos, &mut adv, &model)
                    .expect("e16 run");
            }),
        },
        Workload {
            name: "e17_early_stopping",
            run: Box::new(|obs| {
                let size = n(10);
                let f = 5usize;
                let model = Crash::new(size, f);
                let protos: Vec<_> = (0..10u64)
                    .map(|v| EarlyStoppingConsensus::new(v, f))
                    .collect();
                let mut adv = StaggeredCrash::new(size, 3);
                Engine::new(size)
                    .obs(obs.clone())
                    .run(protos, &mut adv, &model)
                    .expect("e17 run");
            }),
        },
    ]
}

/// Times `run` `samples` times, returning sorted elapsed nanoseconds.
fn time_samples(samples: usize, run: impl Fn()) -> Vec<u64> {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times
}

/// The explorer head-to-head workload: an id-symmetric snapshot protocol
/// (write a constant, snapshot twice, decide on the last view) whose
/// 12-event schedule tree has `12!/(4!)³ = 34650` interleavings but only a
/// handful of distinct states — exactly the shape where the parallel
/// explorer's converged-state memoization should pay off over the
/// sequential re-run walker.
#[derive(Debug, Clone)]
struct SweepSnap {
    phase: u8,
    seen: u64,
}

impl MemProcess<u64> for SweepSnap {
    type Output = u64;
    fn step(&mut self, obs: Observation<u64>) -> Action<u64, u64> {
        self.phase += 1;
        match obs {
            Observation::Start => Action::Write { bank: 0, value: 7 },
            Observation::Written => Action::Snapshot { bank: 0 },
            Observation::SnapshotView(view) => {
                self.seen = view.iter().flatten().count() as u64;
                if self.phase < 4 {
                    Action::Snapshot { bank: 0 }
                } else {
                    Action::Decide(self.seen)
                }
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }
}

impl StateDigest for SweepSnap {
    fn digest(&self, w: &mut DigestWriter) {
        self.phase.digest(w);
        self.seen.digest(w);
    }
}

struct ExploreRow {
    sequential_ns: u64,
    parallel_ns: u64,
    workers: usize,
    speedup_x100: u64,
}

/// Times the sequential re-run explorer against the parallel pruned one on
/// the same envelope (crash-free, full schedule tree) and reports the
/// speedup as an integer percentage ratio.
fn measure_explore(samples: usize) -> ExploreRow {
    let size = n(3);
    let sim = SharedMemSim::new(size, 1).with_snapshots();
    let make = || {
        (0..3)
            .map(|_| SweepSnap { phase: 0, seen: 0 })
            .collect::<Vec<_>>()
    };
    let seq_times = time_samples(samples, || {
        let stats = explore_schedules_checked(&sim, make, |_| Ok(()), 50_000).expect("seq explore");
        assert_eq!(stats.schedules, 34_650);
    });
    let workers = 4;
    let config = ParConfig::new(workers).split_depth(2);
    let par_times = time_samples(samples, || {
        let stats = explore_shared_mem_par(&sim, make, |_| Ok(()), no_fingerprint, &config)
            .expect("par explore");
        assert!(stats.pruned_by_hash > 0, "memoization must fire");
    });
    let sequential_ns = quantile(&seq_times, 0.5);
    let parallel_ns = quantile(&par_times, 0.5).max(1);
    ExploreRow {
        sequential_ns,
        parallel_ns,
        workers,
        speedup_x100: sequential_ns * 100 / parallel_ns,
    }
}

struct MsgPlaneRow {
    workload: &'static str,
    n_procs: usize,
    clone_ns: u64,
    arc_ns: u64,
    speedup_x100: u64,
}

/// The message-plane ablation: the zero-copy shared-table engine against
/// [`ClonePlaneEngine`] (the seed's per-recipient deep-copy delivery), on
/// a deep-payload full-information flood and a `u64` flood-min, at
/// `n ∈ {8, 32, 64}`. `speedup_x100` is `clone_ns * 100 / arc_ns`.
fn measure_msg_plane(samples: usize) -> Vec<MsgPlaneRow> {
    let rounds = 6u32;
    let mut rows = Vec::new();
    let mut row = |workload, n_procs, clone_sorted: &[u64], arc_sorted: &[u64]| {
        let clone_ns = quantile(clone_sorted, 0.5);
        let arc_ns = quantile(arc_sorted, 0.5).max(1);
        rows.push(MsgPlaneRow {
            workload,
            n_procs,
            clone_ns,
            arc_ns,
            speedup_x100: clone_ns * 100 / arc_ns,
        });
    };
    for &nv in &[8usize, 32, 64] {
        let size = n(nv);
        let model = AnyPattern::new(size);

        let full_info = || -> Vec<FullInfoFlood> {
            size.processes()
                .map(|p| FullInfoFlood::new(size, p, 1000 + p.index() as u64, rounds))
                .collect()
        };
        let arc = time_samples(samples, || {
            Engine::new(size)
                .run(full_info(), &mut NoFailures::new(size), &model)
                .expect("msg_plane full_info shared");
        });
        let clone = time_samples(samples, || {
            ClonePlaneEngine::new(size)
                .run(full_info(), &mut NoFailures::new(size), &model)
                .expect("msg_plane full_info clone");
        });
        row("full_info", nv, &clone, &arc);

        let small =
            || -> Vec<FloodMin> { (0..nv as u64).map(|v| FloodMin::new(v, rounds)).collect() };
        let arc = time_samples(samples, || {
            Engine::new(size)
                .run(small(), &mut NoFailures::new(size), &model)
                .expect("msg_plane small_msg shared");
        });
        let clone = time_samples(samples, || {
            ClonePlaneEngine::new(size)
                .run(small(), &mut NoFailures::new(size), &model)
                .expect("msg_plane small_msg clone");
        });
        row("small_msg", nv, &clone, &arc);
    }
    rows
}

struct ExperimentRow {
    name: &'static str,
    samples: usize,
    median_ns: u64,
    p95_ns: u64,
    metrics: BTreeMap<String, u64>,
}

fn run_report(quick: bool) -> String {
    let samples = if quick { 5 } else { 20 };
    let mut rows = Vec::new();
    for workload in workloads() {
        eprintln!("running {} ({samples} samples)...", workload.name);
        // One instrumented run captures the metric totals; the timed
        // samples run with the no-op handle so the numbers reflect the
        // workload, not the recorder.
        let obs = Obs::logical();
        (workload.run)(&obs);
        let metrics: BTreeMap<String, u64> = {
            let snap = obs.snapshot();
            let mut totals: BTreeMap<String, u64> = BTreeMap::new();
            for entry in snap.entries() {
                if let rrfd_obs::MetricValue::Counter(v) = entry.value {
                    *totals.entry(entry.metric.clone()).or_default() += v;
                }
            }
            totals
        };
        let noop = Obs::noop();
        let times = time_samples(samples, || (workload.run)(&noop));
        rows.push(ExperimentRow {
            name: workload.name,
            samples,
            median_ns: quantile(&times, 0.5),
            p95_ns: quantile(&times, 0.95),
            metrics,
        });
    }

    // Overhead triple: the same engine workload uninstrumented, with the
    // no-op handle, and with the sharded recorder.
    eprintln!("measuring recorder overhead ({samples} samples per mode)...");
    let engine_workload = |obs: Option<Obs>| {
        let size = n(8);
        let model = KUncertainty::new(size, 2);
        let protos: Vec<_> = inputs(8).iter().map(|&v| OneRoundKSet::new(v)).collect();
        let mut adv = RandomAdversary::new(model, SEED);
        let mut engine = Engine::new(size);
        if let Some(obs) = obs {
            engine = engine.obs(obs);
        }
        engine.run(protos, &mut adv, &model).expect("overhead run");
    };
    let baseline = quantile(&time_samples(samples, || engine_workload(None)), 0.5);
    let noop = quantile(
        &time_samples(samples, || engine_workload(Some(Obs::noop()))),
        0.5,
    );
    let sharded = quantile(
        &time_samples(samples, || engine_workload(Some(Obs::logical()))),
        0.5,
    );

    // Explorer head-to-head: sequential re-run walker vs the parallel,
    // memoizing one, same envelope.
    let explore_samples = if quick { 3 } else { 7 };
    eprintln!("measuring explorer speedup ({explore_samples} samples per walker)...");
    let explore = measure_explore(explore_samples);

    // Message-plane ablation: shared-table deliveries vs the seed's
    // per-recipient clone plane.
    eprintln!("measuring message-plane ablation ({samples} samples per cell)...");
    let msg_plane = measure_msg_plane(samples);

    // Batch throughput: the sharded pool against the sequential loop on
    // the default tenant mix. `serve` re-measures this section at
    // arbitrary scale and splices it back in.
    let (tp_instances, tp_shards) = if quick { (2_000, 4) } else { (10_000, 4) };
    eprintln!("measuring batch throughput ({tp_instances} instances, {tp_shards} shards)...");
    let throughput = measure_throughput(&MixSpec::default_mix(), tp_instances, tp_shards, SEED);

    // Zoo conformance at batch scale, with every online verdict
    // cross-checked against offline prefix replay of the captured trace.
    let conf_instances = if quick { 200 } else { 1_000 };
    eprintln!("measuring zoo conformance ({conf_instances} monitored instances)...");
    let conformance = measure_conformance(&MixSpec::default_mix(), conf_instances, tp_shards, SEED);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let metrics: Vec<String> = row
            .metrics
            .iter()
            .map(|(name, total)| format!("\"{}\": {total}", json::escape(name)))
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"median_ns\": {}, \"p95_ns\": {}, \
             \"metrics\": {{{}}}}}{}\n",
            json::escape(row.name),
            row.samples,
            row.median_ns,
            row.p95_ns,
            metrics.join(", "),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"baseline_ns\": {baseline}, \"noop_ns\": {noop}, \
         \"sharded_ns\": {sharded}}},\n"
    ));
    out.push_str(&format!(
        "  \"explore\": {{\"sequential_ns\": {}, \"parallel_ns\": {}, \"workers\": {}, \
         \"speedup_x100\": {}}},\n",
        explore.sequential_ns, explore.parallel_ns, explore.workers, explore.speedup_x100,
    ));
    out.push_str(&render_throughput_line(&throughput));
    out.push('\n');
    out.push_str(&render_conformance_block(&conformance));
    out.push('\n');
    out.push_str("  \"msg_plane\": [\n");
    for (i, row) in msg_plane.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"clone_ns\": {}, \"arc_ns\": {}, \
             \"speedup_x100\": {}}}{}\n",
            json::escape(row.workload),
            row.n_procs,
            row.clone_ns,
            row.arc_ns,
            row.speedup_x100,
            if i + 1 < msg_plane.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Validates `text` against the `rrfd-bench v1` schema.
fn check_schema(text: &str) -> Result<(), String> {
    let root = json::parse(text).map_err(|e| e.to_string())?;
    let format = root
        .get("format")
        .and_then(json::Json::as_str)
        .ok_or("missing string field `format`")?;
    if format != FORMAT {
        return Err(format!("format is {format:?}, expected {FORMAT:?}"));
    }
    root.get("quick")
        .and_then(json::Json::as_bool)
        .ok_or("missing bool field `quick`")?;
    let experiments = root
        .get("experiments")
        .and_then(json::Json::as_array)
        .ok_or("missing array field `experiments`")?;
    if experiments.is_empty() {
        return Err("`experiments` is empty".to_owned());
    }
    for (i, entry) in experiments.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("experiment {i}: missing string `name`"))?;
        for field in ["samples", "median_ns", "p95_ns"] {
            entry
                .get(field)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("experiment {name:?}: missing integer `{field}`"))?;
        }
        let metrics = entry
            .get("metrics")
            .ok_or_else(|| format!("experiment {name:?}: missing object `metrics`"))?;
        let json::Json::Obj(fields) = metrics else {
            return Err(format!("experiment {name:?}: `metrics` is not an object"));
        };
        for (metric, total) in fields {
            if total.as_u64().is_none() {
                return Err(format!(
                    "experiment {name:?}: metric {metric:?} total is not an integer"
                ));
            }
        }
    }
    let overhead = root.get("overhead").ok_or("missing object `overhead`")?;
    for field in ["baseline_ns", "noop_ns", "sharded_ns"] {
        overhead
            .get(field)
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("overhead: missing integer `{field}`"))?;
    }
    let explore = root.get("explore").ok_or("missing object `explore`")?;
    for field in ["sequential_ns", "parallel_ns", "workers", "speedup_x100"] {
        explore
            .get(field)
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("explore: missing integer `{field}`"))?;
    }
    let throughput = root
        .get("throughput")
        .ok_or("missing object `throughput`")?;
    throughput
        .get("mix")
        .and_then(json::Json::as_str)
        .ok_or("throughput: missing string `mix`")?;
    for field in [
        "instances",
        "shards",
        "completed",
        "errored",
        "rounds",
        "batch_ns",
        "sequential_ns",
        "instances_per_sec",
        "p99_round_ns",
        "speedup_x100",
    ] {
        throughput
            .get(field)
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("throughput: missing integer `{field}`"))?;
    }
    let conformance = root
        .get("conformance")
        .ok_or("missing object `conformance`")?;
    for field in ["zoo_size", "checked"] {
        conformance
            .get(field)
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("conformance: missing integer `{field}`"))?;
    }
    conformance
        .get("online_offline_agree")
        .and_then(json::Json::as_bool)
        .ok_or("conformance: missing bool `online_offline_agree`")?;
    let classes = conformance
        .get("classes")
        .and_then(json::Json::as_array)
        .ok_or("conformance: missing array `classes`")?;
    if classes.is_empty() {
        return Err("`conformance.classes` is empty".to_owned());
    }
    for (i, entry) in classes.iter().enumerate() {
        entry
            .get("class")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("conformance class {i}: missing string `class`"))?;
        for field in ["instances", "clean"] {
            entry
                .get(field)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("conformance class {i}: missing integer `{field}`"))?;
        }
        entry
            .get("worst_rank")
            .and_then(json::Json::as_i64)
            .ok_or_else(|| format!("conformance class {i}: missing integer `worst_rank`"))?;
        match entry.get("worst_name") {
            Some(json::Json::Null) => {}
            Some(v) if v.as_str().is_some() => {}
            _ => {
                return Err(format!(
                    "conformance class {i}: `worst_name` must be a string or null"
                ))
            }
        }
    }
    let msg_plane = root
        .get("msg_plane")
        .and_then(json::Json::as_array)
        .ok_or("missing array field `msg_plane`")?;
    if msg_plane.is_empty() {
        return Err("`msg_plane` is empty".to_owned());
    }
    for (i, entry) in msg_plane.iter().enumerate() {
        entry
            .get("workload")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("msg_plane {i}: missing string `workload`"))?;
        for field in ["n", "clone_ns", "arc_ns", "speedup_x100"] {
            entry
                .get(field)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("msg_plane {i}: missing integer `{field}`"))?;
        }
    }
    Ok(())
}

/// Asserts the report's overhead triple sits inside the envelope:
/// `noop_ns` within `factor`× of `baseline_ns` (disabled instrumentation
/// must be near-free; `factor` is slack for nanosecond-scale timer
/// noise), and `sharded_ns` within `10·factor`× (the live recorder does
/// real work, so it gets an order of magnitude more headroom).
fn assert_overhead(text: &str, factor: u64) -> Result<(), String> {
    let root = json::parse(text).map_err(|e| e.to_string())?;
    let overhead = root.get("overhead").ok_or("missing object `overhead`")?;
    let field = |name: &str| {
        overhead
            .get(name)
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("overhead: missing integer `{name}`"))
    };
    let baseline = field("baseline_ns")?.max(1);
    let noop = field("noop_ns")?;
    let sharded = field("sharded_ns")?;
    if noop > baseline * factor {
        return Err(format!(
            "noop recorder overhead out of envelope: {noop}ns vs {baseline}ns baseline \
             (allowed {factor}x)"
        ));
    }
    if sharded > baseline * factor * 10 {
        return Err(format!(
            "sharded recorder overhead out of envelope: {sharded}ns vs {baseline}ns baseline \
             (allowed {}x)",
            factor * 10
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take_flag = |args: &mut Vec<String>, flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let take_value = |args: &mut Vec<String>, flag: &str| match args.iter().position(|a| a == flag)
    {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Some(args.remove(i))
        }
        Some(_) => Some(String::new()),
        None => None,
    };

    let quick = take_flag(&mut args, "--quick");
    let check = take_value(&mut args, "--check-schema");
    let assert_factor = take_value(&mut args, "--assert-overhead");
    let out = take_value(&mut args, "--out").unwrap_or_else(|| "BENCH_rrfd.json".to_owned());
    if let Some(extra) = args.first() {
        eprintln!("unexpected argument {extra:?}");
        eprintln!(
            "usage: report [--quick] [--out PATH] [--assert-overhead X] | \
             report --check-schema PATH"
        );
        return ExitCode::from(2);
    }
    let assert_factor: Option<u64> = match assert_factor {
        Some(v) => match v.parse() {
            Ok(f) if f > 0 => Some(f),
            _ => {
                eprintln!("--assert-overhead needs a positive integer factor, got {v:?}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    if let Some(path) = check {
        if path.is_empty() {
            eprintln!("--check-schema needs a value");
            return ExitCode::from(2);
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check_schema(&text) {
            Ok(()) => {
                eprintln!("{path}: valid {FORMAT} report");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: schema check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = run_report(quick);
    if check_schema(&report).is_err() {
        eprintln!("internal error: generated report fails its own schema");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if let Some(factor) = assert_factor {
        if let Err(e) = assert_overhead(&report, factor) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("overhead triple within the {factor}x envelope");
    }
    ExitCode::SUCCESS
}
