//! The batch-throughput CLI: drive the multi-tenant pool at scale and
//! publish the numbers.
//!
//! ```text
//! cargo run -p rrfd-bench --bin serve --release -- \
//!     [--instances N] [--shards S] [--mix SPEC] [--quick] [--out PATH]
//! ```
//!
//! Runs `N` protocol instances of the weighted `--mix` (default: the
//! five-class tenant mix of `MixSpec::DEFAULT_SPEC`) through the sharded
//! batch pool and through the naive sequential loop, then reports
//! instances/sec, p99 per-round step latency (from the pool's
//! `rrfd_pool_round_latency_ns` histogram), and the speedup, plus a
//! per-class zoo-conformance table (monitored / clean / worst surviving
//! predicate, from a separate flight-armed conformance pass so monitor
//! cost never pollutes the throughput number). When the `--out` report
//! file (default `BENCH_rrfd.json`) exists, its `throughput` section is
//! replaced with this measurement and the result is re-validated against
//! the `rrfd-bench v1` schema reader; a missing file is a warning, not
//! an error, so `serve` is usable standalone.
//!
//! `--quick` shrinks the default instance count for CI smoke runs.

use rrfd_bench::{
    measure_conformance, measure_throughput, render_throughput_line, splice_throughput,
};
use rrfd_engine_pool::MixSpec;
use rrfd_obs::json;
use std::process::ExitCode;

const SEED: u64 = 0x5EED_CAFE_F00D_0002;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take_flag = |args: &mut Vec<String>, flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let take_value = |args: &mut Vec<String>, flag: &str| match args.iter().position(|a| a == flag)
    {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Some(args.remove(i))
        }
        Some(_) => Some(String::new()),
        None => None,
    };

    let quick = take_flag(&mut args, "--quick");
    let instances = take_value(&mut args, "--instances");
    let shards = take_value(&mut args, "--shards");
    let mix_spec = take_value(&mut args, "--mix");
    let out = take_value(&mut args, "--out").unwrap_or_else(|| "BENCH_rrfd.json".to_owned());
    if let Some(extra) = args.first() {
        eprintln!("unexpected argument {extra:?}");
        eprintln!("usage: serve [--instances N] [--shards S] [--mix SPEC] [--quick] [--out PATH]");
        return ExitCode::from(2);
    }

    let instances: u64 = match instances {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--instances needs a positive integer, got {v:?}");
                return ExitCode::from(2);
            }
        },
        None => {
            if quick {
                2_000
            } else {
                10_000
            }
        }
    };
    let shards: usize = match shards {
        Some(v) => match v.parse() {
            Ok(s) if s > 0 => s,
            _ => {
                eprintln!("--shards needs a positive integer, got {v:?}");
                return ExitCode::from(2);
            }
        },
        None => 4,
    };
    let mix = match mix_spec {
        Some(spec) => match MixSpec::parse(&spec) {
            Ok(mix) => mix,
            Err(e) => {
                eprintln!("--mix {spec:?}: {e}");
                return ExitCode::from(2);
            }
        },
        None => MixSpec::default_mix(),
    };

    eprintln!("serving {instances} instances of `{mix}` on {shards} shards...");
    let row = measure_throughput(&mix, instances, shards, SEED);

    let per_sec = row.instances_per_sec;
    let speedup = row.speedup_x100;
    println!("instances      {}", row.instances);
    println!("  completed    {}", row.completed);
    println!("  errored      {}", row.errored);
    println!("rounds         {}", row.rounds);
    println!("shards         {}", row.shards);
    println!("batch          {} ms", row.batch_ns / 1_000_000);
    println!("sequential     {} ms", row.sequential_ns / 1_000_000);
    println!("instances/sec  {per_sec}");
    println!("p99 round      {} ns", row.p99_round_ns);
    println!(
        "speedup        {}.{:02}x over the sequential loop",
        speedup / 100,
        speedup % 100
    );

    // Conformance pass: a separate, smaller, flight-armed batch so the
    // monitor never pollutes the throughput numbers above.
    let conf_instances = instances.min(1_000);
    eprintln!("monitoring zoo conformance ({conf_instances} instances)...");
    let conformance = measure_conformance(&mix, conf_instances, shards, SEED);
    println!(
        "conformance    zoo of {} @ f=1, online/offline agree: {}",
        conformance.zoo_size, conformance.online_offline_agree
    );
    println!("  class                      monitored  clean  worst surviving predicate");
    for class in &conformance.classes {
        let worst = match (&class.worst_name, class.worst_rank) {
            (Some(name), rank) => format!("{name} (rank {rank})"),
            (None, _) => "none — some instance left the whole zoo".to_owned(),
        };
        println!(
            "  {:<26} {:>9}  {:>5}  {worst}",
            class.class, class.instances, class.clean
        );
    }
    if !conformance.flight_dumps.is_empty() {
        eprintln!(
            "{} shard flight dump(s) captured from mid-batch errors (first shown):",
            conformance.flight_dumps.len()
        );
        for line in conformance.flight_dumps[0].lines().take(6) {
            eprintln!("  | {line}");
        }
    }

    // Publish: splice the section into the existing report and
    // re-validate, leaving the file untouched on any failure.
    let text = match std::fs::read_to_string(&out) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("note: not updating {out} ({e}); printed results only");
            return ExitCode::SUCCESS;
        }
    };
    let updated = match splice_throughput(&text, &render_throughput_line(&row)) {
        Ok(updated) => updated,
        Err(e) => {
            eprintln!("{out}: cannot splice throughput section: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = json::parse(&updated) {
        eprintln!("{out}: spliced report is not valid JSON: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &updated) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("updated `throughput` section of {out}");
    ExitCode::SUCCESS
}
