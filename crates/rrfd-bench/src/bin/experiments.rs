//! The experiment runner: executes every experiment E1–E13 from DESIGN.md
//! and prints the rows recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run -p rrfd-bench --bin experiments --release`

use rrfd_core::task::{Grade, KSetAgreement, Value};
use rrfd_core::{
    Control, Delivery, Engine, FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundProtocol,
    RrfdPredicate, SystemSize,
};
use rrfd_models::adversary::{RandomAdversary, RingMiss, SilencingCrash};
use rrfd_models::predicates::{
    AntiSymmetric, AsyncResilient, Crash, DetectorS, IdenticalViews, KUncertainty, SendOmission,
    Snapshot, Swmr, SystemB,
};
use rrfd_models::submodel::refines_on_samples;
use rrfd_protocols::adopt_commit::run_adopt_commit;
use rrfd_protocols::detector_from_kset::build_detector_pattern;
use rrfd_protocols::equivalence::{
    majority_echo_pattern, rounds_until_known_by_all, system_b_echo_pattern,
};
use rrfd_protocols::kset::{one_round_kset, FloodMin, OneRoundKSet, SnapshotKSet};
use rrfd_protocols::semi_sync_consensus::{RepeatedRounds, TwoStepConsensus};
use rrfd_protocols::sync_sim::{run_as_omission, run_crash_simulation};
use rrfd_runtime::ThreadedEngine;
use rrfd_sims::detector_s::SAugmentedSystem;
use rrfd_sims::semi_sync::{RandomSemiSync, SemiSyncSim};
use rrfd_sims::shared_mem::{RandomScheduler, SharedMemSim};
use rrfd_sims::sync_net::{RandomCrash, RandomOmission, SyncNetSim};
use std::collections::BTreeSet;

const SEEDS: u64 = 50;

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).expect("valid size")
}

fn inputs(count: usize) -> Vec<Value> {
    (0..count as u64).map(|i| 1000 + i).collect()
}

struct RunFor(u32);
impl RoundProtocol for RunFor {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<()> {
        if d.round.get() >= self.0 {
            Control::Decide(())
        } else {
            Control::Continue
        }
    }
}

fn e1() {
    println!("## E1 — classical systems map onto their RRFD predicates");
    println!();
    println!("| system | runs | extracted rounds | predicate-certified |");
    println!("|--------|------|------------------|---------------------|");

    // Synchronous send-omission.
    let size = n(8);
    let faulty: IdSet = [1usize, 4, 6].iter().map(|&i| ProcessId::new(i)).collect();
    let mut certified = 0usize;
    let mut rounds = 0usize;
    for seed in 0..SEEDS {
        let injector = RandomOmission::new(size, faulty, 0.4, seed);
        let protos: Vec<_> = (0..8).map(|_| RunFor(6)).collect();
        let report = SyncNetSim::new(size).run(protos, injector).unwrap();
        rounds += report.pattern.rounds();
        if SendOmission::new(size, 3).admits_pattern(&report.pattern) {
            certified += 1;
        }
    }
    println!("| sync send-omission (n=8,f=3) | {SEEDS} | {rounds} | {certified}/{SEEDS} |");

    // Synchronous crash.
    let mut certified = 0usize;
    let mut rounds = 0usize;
    for seed in 0..SEEDS {
        let injector = RandomCrash::new(size, faulty, 4, seed);
        let protos: Vec<_> = (0..8).map(|_| RunFor(6)).collect();
        let report = SyncNetSim::new(size).run(protos, injector).unwrap();
        rounds += report.pattern.rounds();
        if Crash::new(size, 3).admits_pattern(&report.pattern) {
            certified += 1;
        }
    }
    println!("| sync crash (n=8,f=3) | {SEEDS} | {rounds} | {certified}/{SEEDS} |");

    // Async round overlay.
    use rrfd_sims::async_net::{AsyncNetSim, RandomNetScheduler};
    use rrfd_sims::async_rounds::RoundedAsync;
    let mut certified = 0usize;
    let mut rounds = 0usize;
    for seed in 0..SEEDS {
        let procs: Vec<_> = size
            .processes()
            .map(|p| RoundedAsync::new(p, size, 2, RunFor(4)))
            .collect();
        let mut sched = RandomNetScheduler::new(seed, 2).crash_prob(0.004);
        let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
        let ok = report
            .processes
            .iter()
            .all(|p| p.fault_log().iter().all(|d| d.len() <= 2));
        rounds += report
            .processes
            .iter()
            .map(|p| p.fault_log().len())
            .max()
            .unwrap_or(0);
        if ok {
            certified += 1;
        }
    }
    println!("| async message passing (n=8,f=2) | {SEEDS} | {rounds} | {certified}/{SEEDS} |");

    // Detector-S system.
    let mut certified = 0usize;
    for seed in 0..SEEDS {
        let mut sys = SAugmentedSystem::random(size, 5, seed);
        let model = DetectorS::new(size);
        let mut history = FaultPattern::new(size);
        let mut ok = true;
        for r in 1..=8 {
            let round = sys.next_round(Round::new(r), &history);
            ok &= model.admits(&history, &round);
            history.push(round);
        }
        if ok {
            certified += 1;
        }
    }
    println!(
        "| detector-S system (n=8) | {SEEDS} | {} | {certified}/{SEEDS} |",
        SEEDS * 8
    );

    // Semi-synchronous 2-step rounds.
    let mut certified = 0usize;
    for seed in 0..SEEDS {
        let procs: Vec<_> = size
            .processes()
            .map(|p| TwoStepConsensus::new(size, p, p.index() as u64))
            .collect();
        let mut sched = RandomSemiSync::new(seed, 7).crash_prob(0.05);
        let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
        let views: Vec<IdSet> = report
            .processes
            .iter()
            .filter_map(TwoStepConsensus::suspected)
            .collect();
        if views.windows(2).all(|w| w[0] == w[1]) {
            certified += 1;
        }
    }
    println!("| semi-sync 2-step rounds (n=8) | {SEEDS} | {SEEDS} | {certified}/{SEEDS} |");
    println!();
}

fn e2() {
    println!("## E2 — System B: two rounds of B implement a round of A");
    println!();
    println!("| n | f | t | simulated rounds | max observed per-round miss | ≤ t always | ≤ f observed |");
    println!("|---|---|---|------------------|-----------------------------|------------|--------------|");
    for &(nv, f, t) in &[
        (7usize, 1usize, 3usize),
        (11, 2, 5),
        (15, 3, 7),
        (21, 4, 10),
    ] {
        let size = n(nv);
        let mut worst = 0usize;
        let rounds = 6u32;
        for seed in 0..SEEDS {
            let mut adv = RandomAdversary::new(SystemB::new(size, f, t), seed);
            let (_, max_miss) = system_b_echo_pattern(size, f, t, &mut adv, rounds);
            worst = worst.max(max_miss);
        }
        println!(
            "| {nv} | {f} | {t} | {} | {worst} | {} | {} |",
            SEEDS * u64::from(rounds),
            worst <= t,
            worst <= f
        );
    }
    // An adaptive adversary that *concentrates* misses: round one has every
    // fast process miss the same f victims (and slow processes miss t),
    // then round two greedily buries, for a slow target, the victims whose
    // round-one hearer sets fit in the t-budget. This is the hardest
    // attack shape against the echo; the observed maximum equals f,
    // supporting the paper's (unproved) "two rounds of B make a round of
    // A" claim.
    println!();
    println!("adaptive concentrated adversary (target p0 slow in both rounds):");
    println!();
    println!("| n | f | t | max simulated misses for the target | = f |");
    println!("|---|---|---|--------------------------------------|------|");
    for &(nv, f, t) in &[(5usize, 1usize, 2usize), (7, 1, 3), (9, 2, 4), (13, 3, 6)] {
        let size = n(nv);
        let universe = IdSet::universe(size);
        // Round 1: victims are the highest-id f processes; everyone misses
        // them; slow processes (the t lowest ids, incl. p0) miss t of them
        // (or pad arbitrarily).
        let victims: IdSet = ((nv - f)..nv).map(ProcessId::new).collect();
        let extra: IdSet = ((nv - t)..nv).map(ProcessId::new).collect();
        let r1 = rrfd_core::RoundFaults::from_sets(
            size,
            size.processes()
                .map(|p| {
                    if p.index() < t {
                        extra - IdSet::singleton(p)
                    } else {
                        victims - IdSet::singleton(p)
                    }
                })
                .collect(),
        );
        // Hearer sets (with self-knowledge).
        let hearers: Vec<IdSet> = size
            .processes()
            .map(|j| {
                size.processes()
                    .filter(|&i| i == j || !r1.of(i).contains(j))
                    .collect()
            })
            .collect();
        // Greedy cover for p0: pick origins whose hearers fit the budget.
        let mut order: Vec<usize> = (0..nv).collect();
        order.sort_by_key(|&j| hearers[j].len());
        let mut d0 = IdSet::empty();
        for j in order {
            if j == 0 {
                continue;
            }
            let candidate = d0 | hearers[j];
            if candidate.len() <= t && candidate != universe {
                d0 = candidate;
            }
        }
        let mut r2 = rrfd_core::RoundFaults::none(size);
        r2.set(ProcessId::new(0), d0);
        let model = SystemB::new(size, f, t);
        assert!(model.admits(&FaultPattern::new(size), &r1));
        {
            let mut h = FaultPattern::new(size);
            h.push(r1.clone());
            assert!(model.admits(&h, &r2));
        }
        let sim = rrfd_protocols::equivalence::echo_round(size, &r1, &r2);
        let missed = sim.of(ProcessId::new(0)).len();
        println!("| {nv} | {f} | {t} | {missed} | {} |", missed == f);
    }

    // Submodel directions.
    let size = n(7);
    let a = AsyncResilient::new(size, 1);
    let b = SystemB::new(size, 1, 3);
    println!();
    println!(
        "A ⇒ B sampled: {}, B ⇒ A sampled: {} (A is a strict submodel of B)",
        refines_on_samples(&a, &b, 100, 8, 2).holds(),
        refines_on_samples(&b, &a, 100, 8, 3).holds()
    );
    println!();
}

fn e3() {
    println!("## E3 — Theorem 3.1: one-round k-set agreement");
    println!();
    println!("| n | k | runs | rounds to decide | max distinct decisions | task violations |");
    println!("|---|---|------|------------------|------------------------|-----------------|");
    for &(nv, k) in &[(4usize, 1usize), (8, 2), (8, 4), (16, 3), (32, 5), (64, 8)] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::new(k);
        let mut max_distinct = 0usize;
        let mut violations = 0usize;
        for seed in 0..SEEDS {
            let mut adv = RandomAdversary::new(KUncertainty::new(size, k), seed);
            let decisions = one_round_kset(size, k, &ins, &mut adv).unwrap();
            let distinct: BTreeSet<Value> = decisions.iter().copied().collect();
            max_distinct = max_distinct.max(distinct.len());
            let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
            if task.check_terminating(&ins, &outs).is_err() {
                violations += 1;
            }
        }
        println!("| {nv} | {k} | {SEEDS} | 1 | {max_distinct} | {violations} |");
    }
    println!();
}

fn e4() {
    println!("## E4 — Corollary 3.2: k-set agreement with k−1 crashes (snapshot memory)");
    println!();
    println!("| n | k | crashes allowed | runs | max distinct decisions | violations |");
    println!("|---|---|-----------------|------|------------------------|------------|");
    for &(nv, k) in &[(5usize, 2usize), (8, 3), (12, 4), (16, 6)] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::new(k);
        let mut max_distinct = 0usize;
        let mut violations = 0usize;
        for seed in 0..SEEDS {
            let procs: Vec<_> = ins.iter().map(|&v| SnapshotKSet::new(size, k, v)).collect();
            let mut sched = RandomScheduler::new(seed, k - 1).crash_prob(0.04);
            let report = SharedMemSim::new(size, 1)
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let distinct: BTreeSet<Value> = report.outputs.iter().flatten().copied().collect();
            max_distinct = max_distinct.max(distinct.len());
            if task.check(&ins, &report.outputs).is_err() {
                violations += 1;
            }
        }
        println!(
            "| {nv} | {k} | {} | {SEEDS} | {max_distinct} | {violations} |",
            k - 1
        );
    }
    println!();
}

fn e5() {
    println!("## E5 — Theorem 3.3: k-uncertainty detector from a k-set-consensus object");
    println!();
    println!("| n | k | rounds | runs | max per-round uncertainty | Pk certified |");
    println!("|---|---|--------|------|---------------------------|--------------|");
    for &(nv, k) in &[(4usize, 1usize), (8, 2), (12, 3), (16, 4)] {
        let size = n(nv);
        let model = KUncertainty::new(size, k);
        let mut worst = 0usize;
        let mut certified = 0u64;
        for seed in 0..SEEDS {
            let mut sched = RandomScheduler::new(seed, 0);
            let pattern = build_detector_pattern(size, k, 4, seed ^ 0xBEEF, &mut sched).unwrap();
            for (_, rf) in pattern.iter() {
                worst = worst.max(rf.uncertainty().len());
            }
            if model.admits_pattern(&pattern) {
                certified += 1;
            }
        }
        println!("| {nv} | {k} | 4 | {SEEDS} | {worst} (< k = {k}) | {certified}/{SEEDS} |");
    }
    println!();
}

fn e6() {
    println!("## E6 — Theorem 4.1: snapshot rounds are omission rounds (⌊f/k⌋ budget)");
    println!();
    println!("| n | f | k | ⌊f/k⌋ rounds | runs | max footprint | certified |");
    println!("|---|---|---|---------------|------|---------------|-----------|");
    for &(nv, f, k) in &[(6usize, 3usize, 1usize), (8, 5, 2), (12, 8, 4), (16, 10, 5)] {
        let size = n(nv);
        let budget = (f / k) as u32;
        let mut certified = 0u64;
        let mut worst_footprint = 0usize;
        for seed in 0..SEEDS {
            let protos: Vec<_> = inputs(nv)
                .into_iter()
                .map(|v| FloodMin::new(v, budget))
                .collect();
            let mut adv = RandomAdversary::new(Snapshot::new(size, k), seed);
            let report = run_as_omission(size, f, k, protos, &mut adv).unwrap();
            worst_footprint = worst_footprint.max(report.run.pattern.cumulative_union().len());
            if report.omission_certified {
                certified += 1;
            }
        }
        println!(
            "| {nv} | {f} | {k} | {budget} | {SEEDS} | {worst_footprint} (≤ f = {f}) | {certified}/{SEEDS} |"
        );
    }
    println!();
}

fn e7() {
    println!("## E7 — §4.2 adopt-commit");
    println!();
    println!("| n | inputs | runs | all-commit runs | mixed runs | spec violations |");
    println!("|---|--------|------|-----------------|------------|-----------------|");
    for &nv in &[4usize, 8, 16] {
        let size = n(nv);
        for (label, ins) in [
            ("unanimous", vec![7u64; nv]),
            ("contended", (0..nv as u64).collect::<Vec<_>>()),
        ] {
            let mut all_commit = 0u64;
            let mut mixed = 0u64;
            let mut violations = 0u64;
            for seed in 0..SEEDS {
                let mut sched = RandomScheduler::new(seed, 0);
                let outs = run_adopt_commit(size, &ins, &mut sched).unwrap();
                let grades: BTreeSet<Grade> = outs.iter().flatten().map(|&(g, _)| g).collect();
                if grades == BTreeSet::from([Grade::Commit]) {
                    all_commit += 1;
                } else if grades.len() > 1 {
                    mixed += 1;
                }
                if rrfd_core::task::AdoptCommitSpec.check(&ins, &outs).is_err() {
                    violations += 1;
                }
            }
            println!("| {nv} | {label} | {SEEDS} | {all_commit} | {mixed} | {violations} |");
        }
    }
    println!();
}

fn e8() {
    println!("## E8 — Theorem 4.3: crash rounds on async snapshot memory");
    println!();
    println!("| n | f | k | sim rounds | runs | max footprint | crash-certified |");
    println!("|---|---|---|------------|------|---------------|-----------------|");
    for &(nv, f, k) in &[(5usize, 2usize, 1usize), (6, 4, 2), (9, 6, 3), (12, 6, 2)] {
        let size = n(nv);
        let budget = (f / k) as u32;
        let mut certified = 0u64;
        let mut worst = 0usize;
        for seed in 0..SEEDS {
            let protos: Vec<_> = inputs(nv)
                .into_iter()
                .map(|v| FloodMin::new(v, budget))
                .collect();
            let mut sched = RandomScheduler::new(seed, k).crash_prob(0.02);
            let report = run_crash_simulation(size, k, f, budget, protos, &mut sched).unwrap();
            worst = worst.max(report.pattern.cumulative_union().len());
            if report.crash_certified {
                certified += 1;
            }
        }
        println!(
            "| {nv} | {f} | {k} | {budget} | {SEEDS} | {worst} (≤ f = {f}) | {certified}/{SEEDS} |"
        );
    }
    println!();
}

fn e9() {
    println!("## E9 — Corollaries 4.2/4.4: the ⌊f/k⌋+1 lower bound, both arms");
    println!();
    println!("| n | f | k | distinct values @ ⌊f/k⌋ | @ ⌊f/k⌋+1 | bound tight |");
    println!("|---|---|---|--------------------------|-----------|-------------|");
    for &(nv, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2), (13, 6, 3), (26, 8, 4)] {
        let size = n(nv);
        let model = Crash::new(size, f);
        let run = |budget: u32| {
            let ins: Vec<Value> = (0..nv as u64).collect();
            let protos: Vec<_> = ins.iter().map(|&v| FloodMin::new(v, budget)).collect();
            let mut adv = SilencingCrash::new(size, f, k);
            let report = Engine::new(size).run(protos, &mut adv, &model).unwrap();
            let crashed = report.pattern.cumulative_union();
            report
                .outputs()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !crashed.contains(ProcessId::new(*i)))
                .map(|(_, v)| v.unwrap())
                .collect::<BTreeSet<Value>>()
                .len()
        };
        let floor = (f / k) as u32;
        let short = run(floor);
        let tight = run(floor + 1);
        println!(
            "| {nv} | {f} | {k} | {short} (> k = {k}) | {tight} (≤ k) | {} |",
            short > k && tight <= k
        );
    }
    println!();
}

fn e10() {
    println!("## E10 — §5: 2-step consensus vs the 2n-step baseline");
    println!();
    println!("| n | 2-step: max steps to decide | baseline: max steps | consensus violations |");
    println!("|---|------------------------------|---------------------|----------------------|");
    for &nv in &[3usize, 5, 8, 12, 16, 24] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::consensus();
        let mut fast_steps = 0u64;
        let mut slow_steps = 0u64;
        let mut violations = 0u64;
        for seed in 0..SEEDS {
            let procs: Vec<_> = size
                .processes()
                .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                .collect();
            let mut sched = RandomSemiSync::new(seed, nv - 1).crash_prob(0.04);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            fast_steps = fast_steps.max(report.max_steps_to_decide().unwrap_or(0));
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .map(|o| o.as_ref().map(|&(v, _)| v))
                .collect();
            if task.check(&ins, &outs).is_err() {
                violations += 1;
            }

            let procs: Vec<_> = size
                .processes()
                .map(|p| RepeatedRounds::new(size, p, ins[p.index()], nv as u32))
                .collect();
            let mut sched = RandomSemiSync::new(seed + 10_000, nv - 1).crash_prob(0.04);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            slow_steps = slow_steps.max(report.max_steps_to_decide().unwrap_or(0));
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .map(|o| o.as_ref().map(|&(v, _)| v))
                .collect();
            if task.check(&ins, &outs).is_err() {
                violations += 1;
            }
        }
        println!("| {nv} | {fast_steps} | {slow_steps} | {violations} |");
    }
    println!();
}

fn e11() {
    println!("## E11 — item 4: SWMR from message passing; the antisymmetric clause");
    println!();
    println!("| n | f | majority-echo runs | SWMR-certified |");
    println!("|---|---|--------------------|----------------|");
    for &(nv, f) in &[(5usize, 2usize), (9, 4), (17, 8), (33, 16)] {
        let size = n(nv);
        let swmr = Swmr::new(size, f);
        let mut certified = 0u64;
        for seed in 0..SEEDS {
            let mut adv = RandomAdversary::new(AsyncResilient::new(size, f), seed);
            let sim = majority_echo_pattern(size, f, &mut adv, 4);
            if swmr.admits_pattern(&sim) {
                certified += 1;
            }
        }
        println!("| {nv} | {f} | {SEEDS} | {certified}/{SEEDS} |");
    }
    println!();
    println!("rounds until some process is known by all (paper: ≤ n; conjecture: 2):");
    println!();
    println!("| n | ring adversary | worst over random antisymmetric runs |");
    println!("|---|----------------|----------------------------------------|");
    for &nv in &[3usize, 6, 10, 16, 24] {
        let size = n(nv);
        let ring = rounds_until_known_by_all(size, &mut RingMiss::new(size), 2 * nv as u32)
            .expect("≤ n rounds");
        let mut worst = 0u32;
        for seed in 0..SEEDS {
            let mut adv = RandomAdversary::new(AntiSymmetric::new(size), seed);
            let r = rounds_until_known_by_all(size, &mut adv, 2 * nv as u32).expect("≤ n rounds");
            worst = worst.max(r);
        }
        println!("| {nv} | {ring} | {worst} |");
    }
    println!();
}

fn e12() {
    println!("## E12 — item 6: detector-S ⇔ send-omission with f = n − 1");
    println!();
    let size = n(6);
    let wide = SendOmission::new(size, 5);
    let s = DetectorS::new(size);
    let fwd = refines_on_samples(&wide, &s, 200, 8, 11).holds();
    let bwd = refines_on_samples(&s, &wide, 200, 8, 12).holds();
    println!("P1(f = n−1) ⇒ P6 on samples: {fwd}");
    println!("P6 ⇒ P1(f = n−1) on samples: {bwd}");
    println!("(the backward direction holds up to the reconciled self-trust clause;");
    println!(" the footprint components are identical by predicate manipulation)");
    println!();
}

fn e13() {
    println!("## E13 — the threaded runtime agrees with the in-process engine");
    println!();
    println!("| n | k | runs | identical decisions | task violations |");
    println!("|---|---|------|---------------------|-----------------|");
    for &(nv, k) in &[(2usize, 1usize), (4, 2), (8, 3), (16, 5)] {
        let size = n(nv);
        let ins = inputs(nv);
        let model = KUncertainty::new(size, k);
        let task = KSetAgreement::new(k);
        let mut identical = 0u64;
        let mut violations = 0u64;
        let runs = 10u64;
        for seed in 0..runs {
            let mut adv_a = RandomAdversary::new(model, seed);
            let engine_out = one_round_kset(size, k, &ins, &mut adv_a).unwrap();
            let protos: Vec<_> = ins.iter().map(|&v| OneRoundKSet::new(v)).collect();
            let mut adv_b = RandomAdversary::new(model, seed);
            let threaded = ThreadedEngine::new(size)
                .run(protos, &mut adv_b, &model)
                .unwrap();
            let threaded_out: Vec<Value> =
                threaded.outputs().into_iter().map(Option::unwrap).collect();
            if engine_out == threaded_out {
                identical += 1;
            }
            let outs: Vec<Option<Value>> = threaded_out.iter().map(|&v| Some(v)).collect();
            if task.check_terminating(&ins, &outs).is_err() {
                violations += 1;
            }
        }
        println!("| {nv} | {k} | {runs} | {identical}/{runs} | {violations} |");
    }
    println!();
}

fn e14() {
    println!("## E14 — immediate snapshots: the iterated model of [4]");
    println!();
    use rrfd_protocols::immediate_snapshot::{views_to_round, IteratedIS};
    println!("| n | iterated rounds | runs | IS properties | P5-certified patterns |");
    println!("|---|-----------------|------|----------------|------------------------|");
    for &(nv, rounds) in &[(3usize, 3u32), (5, 4), (8, 3), (12, 2)] {
        let size = n(nv);
        let model = Snapshot::new(size, nv - 1);
        let mut props_ok = 0u64;
        let mut certified = 0u64;
        for seed in 0..SEEDS {
            let procs: Vec<_> = size
                .processes()
                .map(|p| IteratedIS::new(size, p, rounds))
                .collect();
            let mut sched = RandomScheduler::new(seed, 0);
            let report = SharedMemSim::new(size, IteratedIS::banks_needed(rounds))
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let all: Vec<Vec<IdSet>> = report.outputs.into_iter().map(Option::unwrap).collect();
            let mut ok = true;
            let mut pattern = FaultPattern::new(size);
            for r in 0..rounds as usize {
                let views: Vec<IdSet> = all.iter().map(|v| v[r]).collect();
                for (i, vi) in views.iter().enumerate() {
                    ok &= vi.contains(ProcessId::new(i));
                    for (j, vj) in views.iter().enumerate() {
                        ok &= vi.is_subset(*vj) || vj.is_subset(*vi);
                        if vi.contains(ProcessId::new(j)) {
                            ok &= vj.is_subset(*vi);
                        }
                    }
                }
                pattern.push(views_to_round(size, &views));
            }
            if ok {
                props_ok += 1;
            }
            if model.admits_pattern(&pattern) {
                certified += 1;
            }
        }
        println!("| {nv} | {rounds} | {SEEDS} | {props_ok}/{SEEDS} | {certified}/{SEEDS} |");
    }
    println!();
}

fn e15() {
    println!("## E15 — ABD register emulation: shared memory from message passing");
    println!();
    use rrfd_protocols::abd::{check_clients, AbdClient, Op};
    use rrfd_sims::async_net::{AsyncNetSim, RandomNetScheduler};
    println!("| n | f | runs | avg deliveries | atomicity-certified |");
    println!("|---|---|------|----------------|---------------------|");
    for &(nv, f) in &[(3usize, 1usize), (5, 2), (9, 4)] {
        let size = n(nv);
        let p0 = ProcessId::new(0);
        let scripts: Vec<Vec<Op>> = size
            .processes()
            .map(|p| {
                if p == p0 {
                    vec![Op::Write(1), Op::Write(2), Op::Write(3)]
                } else {
                    vec![Op::Read(p0), Op::Read(p0)]
                }
            })
            .collect();
        let mut certified = 0u64;
        let mut deliveries = 0u64;
        for seed in 0..SEEDS {
            let procs: Vec<_> = size
                .processes()
                .map(|p| AbdClient::new(p, size, f, scripts[p.index()].clone()))
                .collect();
            let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.002);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
            deliveries += report.deliveries;
            if check_clients(&report.processes).is_ok() {
                certified += 1;
            }
        }
        println!(
            "| {nv} | {f} | {SEEDS} | {} | {certified}/{SEEDS} |",
            deliveries / SEEDS
        );
    }
    println!();
}

fn e16() {
    println!("## E16 — consensus under detector-S (§2 item 6's payoff)");
    println!();
    use rrfd_protocols::s_consensus::SRotatingConsensus;
    println!("| n | runs | rounds to decide | consensus violations |");
    println!("|---|------|------------------|----------------------|");
    for &nv in &[3usize, 6, 10, 16] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::consensus();
        let mut violations = 0u64;
        let mut max_rounds = 0u32;
        for seed in 0..SEEDS {
            let protos: Vec<_> = ins
                .iter()
                .map(|&v| SRotatingConsensus::new(size, v))
                .collect();
            let model = DetectorS::new(size);
            let mut adv = RandomAdversary::new(model, seed);
            let report = Engine::new(size).run(protos, &mut adv, &model).unwrap();
            max_rounds = max_rounds.max(report.rounds_executed);
            if task.check_terminating(&ins, &report.outputs()).is_err() {
                violations += 1;
            }
        }
        println!("| {nv} | {SEEDS} | {max_rounds} (= n) | {violations} |");
    }
    println!();
}

fn e17() {
    println!("## E17 — extension: early-stopping consensus (min(f′+2, f+1) rounds)");
    println!();
    use rrfd_models::adversary::StaggeredCrash;
    use rrfd_protocols::early_stopping::EarlyStoppingConsensus;

    let f = 5usize;
    let size = n(10);
    println!("n = 10, tolerance f = {f}; one actual crash per round until f′ is reached");
    println!();
    println!(
        "| actual failures f′ | rounds to decide | worst-case bound min(f′+2, f+1) | consensus |"
    );
    println!(
        "|--------------------|------------------|----------------------------------|-----------|"
    );
    for f_actual in 0..=f {
        let inputs: Vec<Value> = (0..10u64).collect();
        let protos: Vec<_> = inputs
            .iter()
            .map(|&v| EarlyStoppingConsensus::new(v, f))
            .collect();
        let model = Crash::new(size, f);
        let mut adv = StaggeredCrash::new(size, f_actual);
        let report = Engine::new(size).run(protos, &mut adv, &model).unwrap();
        let bound = (f_actual + 2).min(f + 1) as u32;
        let crashed = report.pattern.cumulative_union();
        let outs: Vec<Option<Value>> = report
            .outputs()
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.filter(|_| !crashed.contains(ProcessId::new(i))))
            .collect();
        let ok = KSetAgreement::consensus().check(&inputs, &outs).is_ok();
        assert!(report.rounds_executed <= bound);
        println!(
            "| {f_actual} | {} | {bound} | {ok} |",
            report.rounds_executed
        );
    }
    println!();
}

fn e18() {
    println!("## E18 — ◊S as an RRFD: consensus with quorum locking (§7 future work)");
    println!();
    use rrfd_models::predicates::EventuallyStrong;
    use rrfd_protocols::diamond_s_consensus::DiamondSConsensus;
    println!("| n | f | stabilization round | runs | max rounds to decide | violations |");
    println!("|---|---|---------------------|------|----------------------|------------|");
    for &(nv, f, stab) in &[(3usize, 1usize, 3u32), (5, 2, 6), (7, 3, 12), (9, 4, 24)] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::consensus();
        let mut violations = 0u64;
        let mut max_rounds = 0u32;
        for seed in 0..SEEDS {
            let protos: Vec<_> = size
                .processes()
                .map(|p| DiamondSConsensus::new(size, p, f, ins[p.index()]))
                .collect();
            let model = EventuallyStrong::new(size, f, Round::new(stab));
            let mut adv = RandomAdversary::new(model, seed);
            let report = Engine::new(size)
                .max_rounds(3 * (stab + 3 * nv as u32 + 3))
                .run(protos, &mut adv, &model)
                .unwrap();
            max_rounds = max_rounds.max(report.rounds_executed);
            if task.check_terminating(&ins, &report.outputs()).is_err() {
                violations += 1;
            }
        }
        println!("| {nv} | {f} | {stab} | {SEEDS} | {max_rounds} | {violations} |");
    }
    println!();
}

fn explore_effort() {
    println!("## Exhaustive schedule exploration (search effort)");
    println!();
    println!(
        "The checked explorers return their search-effort totals (`ExploreStats`): \
         schedules enumerated, decision points visited (shared prefixes re-counted), \
         and the deepest decision sequence reached. The totals also land on the \
         `rrfd_explore_*` metrics via `ExploreStats::record`."
    );
    println!();
    println!("| instance | schedules | decision points | max depth | violations |");
    println!("|----------|-----------|-----------------|-----------|------------|");

    use rrfd_core::task::AdoptCommitSpec;
    use rrfd_protocols::adopt_commit::AdoptCommitProcess;
    use rrfd_protocols::immediate_snapshot::{ImmediateSnapshot, IsDriver};
    use rrfd_sims::explore::explore_schedules_checked;

    // Adopt-commit, n = 2, mixed inputs: C(14,7) = 3432 interleavings.
    let size = n(2);
    let inputs = [4u64, 9];
    let sim = SharedMemSim::new(size, 2);
    let stats = explore_schedules_checked(
        &sim,
        || {
            vec![
                AdoptCommitProcess::new(size, ProcessId::new(0), inputs[0], 0),
                AdoptCommitProcess::new(size, ProcessId::new(1), inputs[1], 0),
            ]
        },
        |report| {
            AdoptCommitSpec
                .check(&inputs, &report.outputs)
                .map_err(|v| format!("{v}"))
        },
        10_000,
    )
    .expect("adopt-commit holds on every schedule");
    println!(
        "| adopt-commit (n=2, inputs 4/9) | {} | {} | {} | 0 |",
        stats.schedules, stats.decision_points, stats.max_depth
    );

    // Immediate snapshot, n = 2: every interleaving, self-inclusion held.
    let sim = SharedMemSim::new(size, ImmediateSnapshot::BANKS).with_snapshots();
    let stats = explore_schedules_checked(
        &sim,
        || {
            vec![
                IsDriver::new(ImmediateSnapshot::new(size, ProcessId::new(0), 0)),
                IsDriver::new(ImmediateSnapshot::new(size, ProcessId::new(1), 1)),
            ]
        },
        |report| {
            for (i, view) in report.outputs.iter().enumerate() {
                let view = view.as_ref().ok_or_else(|| format!("p{i} undecided"))?;
                if !view.contains(ProcessId::new(i)) {
                    return Err(format!("p{i} view misses itself"));
                }
            }
            Ok(())
        },
        100_000,
    )
    .expect("immediate snapshot holds on every schedule");
    println!(
        "| immediate snapshot (n=2) | {} | {} | {} | 0 |",
        stats.schedules, stats.decision_points, stats.max_depth
    );
    println!();
}

fn submodel_table() {
    println!("## Submodel lattice (sampled refinement checks)");
    println!();
    let size = n(7);
    let f = 3;
    let checks: Vec<(String, String, bool)> = vec![
        (
            Crash::new(size, f).name(),
            SendOmission::new(size, f).name(),
            refines_on_samples(&Crash::new(size, f), &SendOmission::new(size, f), 100, 8, 1)
                .holds(),
        ),
        (
            Snapshot::new(size, f).name(),
            Swmr::new(size, f).name(),
            refines_on_samples(&Snapshot::new(size, f), &Swmr::new(size, f), 100, 8, 2).holds(),
        ),
        (
            Swmr::new(size, f).name(),
            AsyncResilient::new(size, f).name(),
            refines_on_samples(
                &Swmr::new(size, f),
                &AsyncResilient::new(size, f),
                100,
                8,
                3,
            )
            .holds(),
        ),
        (
            IdenticalViews::new(size).name(),
            KUncertainty::new(size, 1).name(),
            refines_on_samples(
                &IdenticalViews::new(size),
                &KUncertainty::new(size, 1),
                100,
                8,
                4,
            )
            .holds(),
        ),
        (
            KUncertainty::new(size, 2).name(),
            KUncertainty::new(size, 4).name(),
            refines_on_samples(
                &KUncertainty::new(size, 2),
                &KUncertainty::new(size, 4),
                100,
                8,
                5,
            )
            .holds(),
        ),
    ];
    println!("| A | B | A ⇒ B |");
    println!("|---|---|--------|");
    for (a, b, v) in checks {
        println!("| {a} | {b} | {v} |");
    }
    println!();
}

fn main() {
    println!("# RRFD experiment report");
    println!();
    println!(
        "Generated by `cargo run -p rrfd-bench --bin experiments --release`; {SEEDS} seeds per cell unless noted."
    );
    println!();
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    e13();
    e14();
    e15();
    e16();
    e17();
    e18();
    explore_effort();
    submodel_table();
    println!(
        "All claims certified mechanically; any `false`/violation above is a reproduction failure."
    );
}
