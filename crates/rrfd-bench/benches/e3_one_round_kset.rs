//! E3 — Theorem 3.1: one-round k-set agreement throughput, sweeping `n`
//! and `k`. Regenerates the "solved in one round" claim as a latency
//! series: cost is one emit/deliver round regardless of `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, KS, SEED, SYSTEM_SIZES};
use rrfd_core::SystemSize;
use rrfd_models::adversary::RandomAdversary;
use rrfd_models::predicates::KUncertainty;
use rrfd_protocols::kset::one_round_kset;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_one_round_kset");
    for &nv in SYSTEM_SIZES {
        for &k in KS {
            if k >= nv {
                continue;
            }
            let n = SystemSize::new(nv).unwrap();
            let inputs = agreement_inputs(nv);
            group.bench_with_input(
                BenchmarkId::new(format!("n{nv}"), k),
                &(n, k),
                |b, &(n, k)| {
                    b.iter(|| {
                        let mut adv = RandomAdversary::new(KUncertainty::new(n, k), SEED);
                        one_round_kset(n, k, &inputs, &mut adv).unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
