//! E2 — §2 item 3's System B: two rounds of B implement one round of A.
//! Benchmarks the echo construction's cost and (in the experiments binary)
//! the observed per-round miss bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED};
use rrfd_core::SystemSize;
use rrfd_models::adversary::RandomAdversary;
use rrfd_models::predicates::SystemB;
use rrfd_protocols::equivalence::system_b_echo_pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_system_b");
    for &(nv, f, t) in &[(7usize, 1usize, 3usize), (11, 2, 5), (21, 3, 10)] {
        let n = SystemSize::new(nv).unwrap();
        group.bench_with_input(
            BenchmarkId::new("two_rounds_of_b", format!("n{nv}_f{f}_t{t}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut adv = RandomAdversary::new(SystemB::new(n, f, t), SEED);
                    let (pattern, max_miss) = system_b_echo_pattern(n, f, t, &mut adv, 6);
                    assert!(max_miss <= t);
                    pattern
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
