//! E16/E17 — the consensus extensions: detector-S rotating-coordinator
//! consensus (n rounds) and early-stopping crash consensus
//! (min(f′+2, f+1) rounds), as latency series over n and f′.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::{Engine, SystemSize};
use rrfd_models::adversary::{RandomAdversary, StaggeredCrash};
use rrfd_models::predicates::{Crash, DetectorS};
use rrfd_protocols::early_stopping::EarlyStoppingConsensus;
use rrfd_protocols::s_consensus::SRotatingConsensus;

fn bench_s_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_s_consensus");
    for &nv in &[4usize, 8, 16, 32] {
        let n = SystemSize::new(nv).unwrap();
        let inputs = agreement_inputs(nv);
        group.bench_with_input(BenchmarkId::new("rotating", nv), &n, |b, &n| {
            b.iter(|| {
                let protos: Vec<_> = inputs
                    .iter()
                    .map(|&v| SRotatingConsensus::new(n, v))
                    .collect();
                let model = DetectorS::new(n);
                let mut adv = RandomAdversary::new(model, SEED);
                Engine::new(n).run(protos, &mut adv, &model).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_early_stopping(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_early_stopping");
    let f = 5usize;
    let n = SystemSize::new(12).unwrap();
    let inputs = agreement_inputs(12);
    for f_actual in [0usize, 2, 5] {
        group.bench_with_input(
            BenchmarkId::new("staggered", format!("fprime{f_actual}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let protos: Vec<_> = inputs
                        .iter()
                        .map(|&v| EarlyStoppingConsensus::new(v, f))
                        .collect();
                    let model = Crash::new(n, f);
                    let mut adv = StaggeredCrash::new(n, f_actual);
                    Engine::new(n).run(protos, &mut adv, &model).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_s_consensus, bench_early_stopping
}
criterion_main!(benches);
