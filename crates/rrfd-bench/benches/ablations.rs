//! Ablation benches for the design choices called out in DESIGN.md §7:
//!
//! * `idset_vs_btreeset` — the `u128` bitmap representation of process
//!   sets against a `BTreeSet<usize>` baseline, on the union/intersection
//!   mix predicates execute per round.
//! * `predicate_check` — the cost of the engine's per-round validation
//!   (well-formedness + model predicate), i.e. what "checked adversaries"
//!   cost on the hot path.
//! * `full_info_vs_compact` — full-information relaying (whole knowledge
//!   state per message) against compact flood-min messages at equal round
//!   counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED};
use rrfd_core::{
    validate_round, Engine, FaultPattern, IdSet, KnowledgeProtocol, ProcessId, SystemSize,
};
use rrfd_models::adversary::{NoFailures, RandomAdversary, SampleModel};
use rrfd_models::predicates::{Crash, Snapshot};
use rrfd_protocols::kset::FloodMin;
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_idset(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_idset_vs_btreeset");
    let n = 64usize;
    let a_items: Vec<usize> = (0..n).step_by(2).collect();
    let b_items: Vec<usize> = (0..n).step_by(3).collect();

    let a_bits: IdSet = a_items.iter().map(|&i| ProcessId::new(i)).collect();
    let b_bits: IdSet = b_items.iter().map(|&i| ProcessId::new(i)).collect();
    group.bench_function(BenchmarkId::new("idset", "mix"), |bench| {
        bench.iter(|| {
            let u = black_box(a_bits) | black_box(b_bits);
            let i = a_bits & b_bits;
            let d = u - i;
            black_box((d.len(), d.min(), a_bits.is_subset(u)))
        });
    });

    let a_tree: BTreeSet<usize> = a_items.iter().copied().collect();
    let b_tree: BTreeSet<usize> = b_items.iter().copied().collect();
    group.bench_function(BenchmarkId::new("btreeset", "mix"), |bench| {
        bench.iter(|| {
            let u: BTreeSet<usize> = a_tree.union(&b_tree).copied().collect();
            let i: BTreeSet<usize> = a_tree.intersection(&b_tree).copied().collect();
            let d: BTreeSet<usize> = u.difference(&i).copied().collect();
            black_box((d.len(), d.iter().next().copied(), a_tree.is_subset(&u)))
        });
    });
    group.finish();
}

fn bench_predicate_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_predicate_check");
    for &nv in &[16usize, 64, 128] {
        let n = SystemSize::new(nv).unwrap();
        let model = Snapshot::new(n, nv / 4);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(SEED)
        };
        let history = FaultPattern::new(n);
        let round = model.sample_round(&mut rng, &history);
        group.bench_with_input(BenchmarkId::new("snapshot_validate", nv), &n, |b, _| {
            b.iter(|| validate_round(&model, &history, black_box(&round)).unwrap());
        });

        let crash = Crash::new(n, nv / 4);
        let crash_round = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
            crash.sample_round(&mut rng, &history)
        };
        group.bench_with_input(BenchmarkId::new("crash_validate", nv), &n, |b, _| {
            b.iter(|| validate_round(&crash, &history, black_box(&crash_round)).unwrap());
        });
    }
    group.finish();
}

fn bench_full_info(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fullinfo_vs_compact");
    for &nv in &[8usize, 16, 32] {
        let n = SystemSize::new(nv).unwrap();
        let rounds = 4u32;

        group.bench_with_input(BenchmarkId::new("full_information", nv), &n, |b, &n| {
            b.iter(|| {
                let protos: Vec<_> = n
                    .processes()
                    .map(|p| KnowledgeProtocol::new(n, p, p.index() as u64, rounds))
                    .collect();
                Engine::new(n)
                    .run(
                        protos,
                        &mut NoFailures::new(n),
                        &rrfd_core::AnyPattern::new(n),
                    )
                    .unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("compact_floodmin", nv), &n, |b, &n| {
            b.iter(|| {
                let protos: Vec<_> = (0..nv as u64).map(|v| FloodMin::new(v, rounds)).collect();
                Engine::new(n)
                    .run(
                        protos,
                        &mut NoFailures::new(n),
                        &rrfd_core::AnyPattern::new(n),
                    )
                    .unwrap()
            });
        });

        // And the same under a real adversary, for scale.
        group.bench_with_input(BenchmarkId::new("compact_under_crash", nv), &n, |b, &n| {
            b.iter(|| {
                let model = Crash::new(n, nv / 4);
                let protos: Vec<_> = (0..nv as u64).map(|v| FloodMin::new(v, rounds)).collect();
                let mut adv = RandomAdversary::new(model, SEED);
                Engine::new(n).run(protos, &mut adv, &model).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_idset, bench_predicate_check, bench_full_info
}
criterion_main!(benches);
