//! E10 — §5: Gafni's 2-step consensus vs the 2n-step DDS-style baseline.
//! The measured series makes the paper's open-problem resolution visible:
//! the 2-step line is flat in `n` per process (total work O(n) deliveries),
//! the baseline grows with the extra factor `n` of rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED, SYSTEM_SIZES};
use rrfd_core::SystemSize;
use rrfd_protocols::semi_sync_consensus::{RepeatedRounds, TwoStepConsensus};
use rrfd_sims::semi_sync::{RandomSemiSync, SemiSyncSim};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_semi_sync");
    for &nv in SYSTEM_SIZES {
        let n = SystemSize::new(nv).unwrap();
        let inputs = agreement_inputs(nv);

        group.bench_with_input(BenchmarkId::new("two_step", nv), &n, |b, &n| {
            b.iter(|| {
                let procs: Vec<_> = n
                    .processes()
                    .map(|p| TwoStepConsensus::new(n, p, inputs[p.index()]))
                    .collect();
                let mut sched = RandomSemiSync::new(SEED, 0);
                SemiSyncSim::new(n).run(procs, &mut sched).unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("dds_2n_step", nv), &n, |b, &n| {
            b.iter(|| {
                let procs: Vec<_> = n
                    .processes()
                    .map(|p| RepeatedRounds::new(n, p, inputs[p.index()], nv as u32))
                    .collect();
                let mut sched = RandomSemiSync::new(SEED, 0);
                SemiSyncSim::new(n).run(procs, &mut sched).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
