//! E11 — §2 item 4: two rounds of the asynchronous predicate (2f < n)
//! emulating one SWMR round (majority echo), plus the antisymmetric-clause
//! gossip experiment (rounds until some process is known by all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED};
use rrfd_core::{RrfdPredicate, SystemSize};
use rrfd_models::adversary::{RandomAdversary, RingMiss};
use rrfd_models::predicates::{AsyncResilient, Swmr};
use rrfd_protocols::equivalence::{majority_echo_pattern, rounds_until_known_by_all};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_swmr_emulation");
    for &(nv, f) in &[(5usize, 2usize), (9, 4), (17, 8), (33, 16)] {
        let n = SystemSize::new(nv).unwrap();
        group.bench_with_input(
            BenchmarkId::new("majority_echo", format!("n{nv}_f{f}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut adv = RandomAdversary::new(AsyncResilient::new(n, f), SEED);
                    let sim = majority_echo_pattern(n, f, &mut adv, 4);
                    assert!(Swmr::new(n, f).admits_pattern(&sim));
                    sim
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("ring_gossip", nv), &n, |b, &n| {
            b.iter(|| {
                let mut det = RingMiss::new(n);
                rounds_until_known_by_all(n, &mut det, 2 * nv as u32).expect("bounded by n")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
