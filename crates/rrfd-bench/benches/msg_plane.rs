//! The message-plane ablation (DESIGN.md §12): the zero-copy engine —
//! one emission table per round, borrowed by every `Delivery` — against
//! [`ClonePlaneEngine`], the seed's per-recipient deep-copy delivery.
//!
//! Two workloads at `n ∈ {8, 32, 64}`:
//!
//! * `full_info` — [`FullInfoFlood`], whose `Vec<u64>` payload makes a
//!   clone cost `O(n)`, so the clone plane pays `O(n²)` words per round
//!   where the shared plane pays only the `n` emission allocations.
//! * `small_msg` — compact `u64` flood-min messages, isolating the
//!   per-message bookkeeping from payload copy volume (the planes should
//!   be near-par here).
//!
//! The machine-readable twin of this sweep is the `msg_plane` section of
//! `BENCH_rrfd.json` (`cargo run -p rrfd-bench --bin report`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, ClonePlaneEngine, FullInfoFlood};
use rrfd_core::{AnyPattern, Engine, SystemSize};
use rrfd_models::adversary::NoFailures;
use rrfd_protocols::kset::FloodMin;

const ROUNDS: u32 = 6;

fn bench_msg_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("msg_plane");
    for &nv in &[8usize, 32, 64] {
        let n = SystemSize::new(nv).unwrap();
        let model = AnyPattern::new(n);
        let full_info = || -> Vec<FullInfoFlood> {
            n.processes()
                .map(|p| FullInfoFlood::new(n, p, 1000 + p.index() as u64, ROUNDS))
                .collect()
        };
        let small =
            || -> Vec<FloodMin> { (0..nv as u64).map(|v| FloodMin::new(v, ROUNDS)).collect() };

        group.bench_with_input(BenchmarkId::new("full_info_shared", nv), &n, |b, &n| {
            b.iter(|| {
                Engine::new(n)
                    .run(full_info(), &mut NoFailures::new(n), &model)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("full_info_clone", nv), &n, |b, &n| {
            b.iter(|| {
                ClonePlaneEngine::new(n)
                    .run(full_info(), &mut NoFailures::new(n), &model)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("small_msg_shared", nv), &n, |b, &n| {
            b.iter(|| {
                Engine::new(n)
                    .run(small(), &mut NoFailures::new(n), &model)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("small_msg_clone", nv), &n, |b, &n| {
            b.iter(|| {
                ClonePlaneEngine::new(n)
                    .run(small(), &mut NoFailures::new(n), &model)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_msg_plane
}
criterion_main!(benches);
