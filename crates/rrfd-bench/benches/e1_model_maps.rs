//! E1/E12 — extraction cost of mapping classical executions onto RRFD
//! predicates: run each simulator and machine-check the extracted pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED};
use rrfd_core::{
    Control, Delivery, FaultDetector, FaultPattern, IdSet, ProcessId, Round, RoundProtocol,
    RrfdPredicate, SystemSize,
};
use rrfd_models::predicates::{Crash, DetectorS, SendOmission};
use rrfd_sims::detector_s::SAugmentedSystem;
use rrfd_sims::sync_net::{RandomCrash, RandomOmission, SyncNetSim};

struct RunFor(u32);
impl RoundProtocol for RunFor {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<()> {
        if d.round.get() >= self.0 {
            Control::Decide(())
        } else {
            Control::Continue
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_model_maps");
    for &nv in &[8usize, 16, 32] {
        let n = SystemSize::new(nv).unwrap();
        let faulty: IdSet = (0..nv / 4).map(ProcessId::new).collect();

        group.bench_with_input(BenchmarkId::new("omission_extract", nv), &n, |b, &n| {
            b.iter(|| {
                let injector = RandomOmission::new(n, faulty, 0.4, SEED);
                let protos: Vec<_> = (0..nv).map(|_| RunFor(6)).collect();
                let report = SyncNetSim::new(n).run(protos, injector).unwrap();
                assert!(SendOmission::new(n, nv / 4).admits_pattern(&report.pattern));
            });
        });

        group.bench_with_input(BenchmarkId::new("crash_extract", nv), &n, |b, &n| {
            b.iter(|| {
                let injector = RandomCrash::new(n, faulty, 4, SEED);
                let protos: Vec<_> = (0..nv).map(|_| RunFor(6)).collect();
                let report = SyncNetSim::new(n).run(protos, injector).unwrap();
                assert!(Crash::new(n, nv / 4).admits_pattern(&report.pattern));
            });
        });

        group.bench_with_input(BenchmarkId::new("detector_s_extract", nv), &n, |b, &n| {
            b.iter(|| {
                let mut sys = SAugmentedSystem::random(n, 4, SEED);
                let model = DetectorS::new(n);
                let mut history = FaultPattern::new(n);
                for r in 1..=8 {
                    let round = sys.next_round(Round::new(r), &history);
                    assert!(model.admits(&history, &round));
                    history.push(round);
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
