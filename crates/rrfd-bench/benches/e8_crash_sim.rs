//! E8 — Theorem 4.3: full crash-round simulation (snapshot phase + n
//! adopt-commit instances per simulated round) with certification. The
//! interesting shape: cost per simulated round is Θ(n²) register
//! operations per process, i.e. the paper's "three rounds" carry a real
//! constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::SystemSize;
use rrfd_protocols::kset::FloodMin;
use rrfd_protocols::sync_sim::run_crash_simulation;
use rrfd_sims::shared_mem::RandomScheduler;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_crash_sim");
    for &(nv, f, k) in &[(5usize, 2usize, 1usize), (8, 4, 2), (12, 6, 3)] {
        let n = SystemSize::new(nv).unwrap();
        let budget = (f / k) as u32;
        let inputs = agreement_inputs(nv);
        group.bench_with_input(
            BenchmarkId::new("simulate_and_certify", format!("n{nv}_f{f}_k{k}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let protos: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
                    let mut sched = RandomScheduler::new(SEED, k).crash_prob(0.01);
                    let report = run_crash_simulation(n, k, f, budget, protos, &mut sched).unwrap();
                    assert!(report.crash_certified);
                    report
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
