//! E13 — the threaded runtime: Theorem 3.1's one-round k-set agreement on
//! real OS threads, measured against the in-process engine. The gap is the
//! cost of thread spawn + channel coordination per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::SystemSize;
use rrfd_models::adversary::RandomAdversary;
use rrfd_models::predicates::KUncertainty;
use rrfd_protocols::kset::{one_round_kset, OneRoundKSet};
use rrfd_runtime::ThreadedEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_runtime");
    for &nv in &[2usize, 4, 8, 16] {
        let n = SystemSize::new(nv).unwrap();
        let k = (nv / 2).max(1);
        let inputs = agreement_inputs(nv);
        let model = KUncertainty::new(n, k);

        group.bench_with_input(BenchmarkId::new("threads", nv), &n, |b, &n| {
            b.iter(|| {
                let protos: Vec<_> = inputs.iter().map(|&v| OneRoundKSet::new(v)).collect();
                let mut adv = RandomAdversary::new(model, SEED);
                ThreadedEngine::new(n)
                    .run(protos, &mut adv, &model)
                    .unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("in_process", nv), &n, |b, &n| {
            b.iter(|| {
                let mut adv = RandomAdversary::new(model, SEED);
                one_round_kset(n, k, &inputs, &mut adv).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
