//! E6 — Theorem 4.1: running `⌊f/k⌋` rounds under the snapshot model and
//! certifying them as send-omission rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::SystemSize;
use rrfd_models::adversary::RandomAdversary;
use rrfd_models::predicates::Snapshot;
use rrfd_protocols::kset::FloodMin;
use rrfd_protocols::sync_sim::run_as_omission;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_omission_sim");
    for &(nv, f, k) in &[(8usize, 4usize, 2usize), (16, 9, 3), (32, 12, 4)] {
        let n = SystemSize::new(nv).unwrap();
        let budget = (f / k) as u32;
        let inputs = agreement_inputs(nv);
        group.bench_with_input(
            BenchmarkId::new("simulate_and_certify", format!("n{nv}_f{f}_k{k}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let protos: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
                    let mut adv = RandomAdversary::new(Snapshot::new(n, k), SEED);
                    let report = run_as_omission(n, f, k, protos, &mut adv).unwrap();
                    assert!(report.omission_certified);
                    report
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
