//! E4 — Corollary 3.2: k-set agreement on snapshot shared memory with
//! `k − 1` crash faults, sweeping `n` and `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::SystemSize;
use rrfd_protocols::kset::SnapshotKSet;
use rrfd_sims::shared_mem::{RandomScheduler, SharedMemSim};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_snapshot_kset");
    for &(nv, k) in &[(4usize, 2usize), (8, 3), (16, 5), (32, 9)] {
        let n = SystemSize::new(nv).unwrap();
        let inputs = agreement_inputs(nv);
        group.bench_with_input(
            BenchmarkId::new(format!("n{nv}"), k),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    let procs: Vec<_> =
                        inputs.iter().map(|&v| SnapshotKSet::new(n, k, v)).collect();
                    let mut sched = RandomScheduler::new(SEED, k - 1).crash_prob(0.02);
                    SharedMemSim::new(n, 1)
                        .with_snapshots()
                        .run(procs, &mut sched)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
