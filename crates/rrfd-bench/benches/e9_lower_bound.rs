//! E9 — Corollaries 4.2/4.4: flood-min against the chain-silencing
//! adversary at the failing budget `⌊f/k⌋` and the tight budget
//! `⌊f/k⌋ + 1`. The bench shows the cost of the extra round is linear in
//! the message load, i.e. the lower bound is about *information*, not
//! computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::quick_criterion;
use rrfd_core::{Engine, SystemSize};
use rrfd_models::adversary::SilencingCrash;
use rrfd_models::predicates::Crash;
use rrfd_protocols::kset::FloodMin;

fn run(n: SystemSize, f: usize, k: usize, budget: u32) {
    let protos: Vec<_> = (0..n.get() as u64)
        .map(|v| FloodMin::new(v, budget))
        .collect();
    let mut adv = SilencingCrash::new(n, f, k);
    let model = Crash::new(n, f);
    let _ = Engine::new(n).run(protos, &mut adv, &model).unwrap();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_lower_bound");
    for &(nv, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2), (13, 6, 3), (26, 8, 4)] {
        let n = SystemSize::new(nv).unwrap();
        let floor = (f / k) as u32;
        group.bench_with_input(
            BenchmarkId::new("short_budget", format!("n{nv}_f{f}_k{k}")),
            &(n, f, k),
            |b, &(n, f, k)| b.iter(|| run(n, f, k, floor)),
        );
        group.bench_with_input(
            BenchmarkId::new("tight_budget", format!("n{nv}_f{f}_k{k}")),
            &(n, f, k),
            |b, &(n, f, k)| b.iter(|| run(n, f, k, floor + 1)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
