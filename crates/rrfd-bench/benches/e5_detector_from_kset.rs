//! E5 — Theorem 3.3: constructing the k-uncertainty detector from a
//! k-set-consensus object plus SWMR memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED};
use rrfd_core::{RrfdPredicate, SystemSize};
use rrfd_models::predicates::KUncertainty;
use rrfd_protocols::detector_from_kset::build_detector_pattern;
use rrfd_sims::shared_mem::RandomScheduler;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_detector_from_kset");
    for &(nv, k) in &[(4usize, 1usize), (8, 2), (16, 4), (32, 8)] {
        let n = SystemSize::new(nv).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("n{nv}"), k),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    let mut sched = RandomScheduler::new(SEED, 0);
                    let pattern = build_detector_pattern(n, k, 4, SEED, &mut sched).unwrap();
                    assert!(KUncertainty::new(n, k).admits_pattern(&pattern));
                    pattern
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
