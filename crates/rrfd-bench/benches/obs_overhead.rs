//! Holds `rrfd-obs` to its "disabled instrumentation is free" contract:
//! the same one-round k-set engine workload measured three ways —
//! uninstrumented baseline, no-op `Obs` handle, and the sharded
//! recorder with the logical clock. Baseline and no-op must sit within
//! noise of each other; the sharded column prices enabled recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{agreement_inputs, quick_criterion, SEED};
use rrfd_core::{Engine, SystemSize};
use rrfd_models::adversary::RandomAdversary;
use rrfd_models::predicates::KUncertainty;
use rrfd_obs::Obs;
use rrfd_protocols::kset::OneRoundKSet;

fn run_engine(n: SystemSize, k: usize, inputs: &[u64], obs: Option<&Obs>) {
    let model = KUncertainty::new(n, k);
    let protos: Vec<_> = inputs.iter().map(|&v| OneRoundKSet::new(v)).collect();
    let mut adv = RandomAdversary::new(model, SEED);
    let mut engine = Engine::new(n);
    if let Some(obs) = obs {
        engine = engine.obs(obs.clone());
    }
    engine.run(protos, &mut adv, &model).unwrap();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    for &nv in &[8usize, 32] {
        let n = SystemSize::new(nv).unwrap();
        let inputs = agreement_inputs(nv);
        let k = 2;
        group.bench_with_input(BenchmarkId::new("baseline", nv), &n, |b, &n| {
            b.iter(|| run_engine(n, k, &inputs, None));
        });
        group.bench_with_input(BenchmarkId::new("noop", nv), &n, |b, &n| {
            let obs = Obs::noop();
            b.iter(|| run_engine(n, k, &inputs, Some(&obs)));
        });
        group.bench_with_input(BenchmarkId::new("sharded", nv), &n, |b, &n| {
            let obs = Obs::logical();
            b.iter(|| run_engine(n, k, &inputs, Some(&obs)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
