//! E7 — §4.2's adopt-commit protocol: latency per instance (2 writes +
//! 2n reads per process), unanimous vs contended inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrfd_bench::{quick_criterion, SEED, SYSTEM_SIZES};
use rrfd_core::SystemSize;
use rrfd_protocols::adopt_commit::run_adopt_commit;
use rrfd_sims::shared_mem::RandomScheduler;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_adopt_commit");
    for &nv in SYSTEM_SIZES {
        let n = SystemSize::new(nv).unwrap();
        let unanimous: Vec<u64> = vec![7; nv];
        let contended: Vec<u64> = (0..nv as u64).collect();

        group.bench_with_input(BenchmarkId::new("unanimous", nv), &n, |b, &n| {
            b.iter(|| {
                let mut sched = RandomScheduler::new(SEED, 0);
                run_adopt_commit(n, &unanimous, &mut sched).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("contended", nv), &n, |b, &n| {
            b.iter(|| {
                let mut sched = RandomScheduler::new(SEED, 0);
                run_adopt_commit(n, &contended, &mut sched).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
